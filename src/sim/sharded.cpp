#include "sim/sharded.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/rss.hpp"
#include "common/thread_annotations.hpp"
#ifdef DHTIDX_AUDIT
#include "audit/audit.hpp"
#endif
#include "dht/ring.hpp"
#include "index/lookup.hpp"
#include "index/scheme.hpp"
#include "workload/streaming.hpp"
#include "xml/writer.hpp"

namespace dhtidx::sim {

namespace {

using index::CachePolicy;
using query::Query;

double wall_seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

/// Articles per bulk-synchronous build epoch. Fixed (never derived from the
/// shard count or machine), so the epoch boundaries — and therefore the
/// interner's growth schedule — are identical for every S.
constexpr std::size_t kBuildEpoch = 8192;

/// Queries per bulk-synchronous feed epoch (caching policies only). The
/// epoch length is observable semantics, not a tuning knob: a session can
/// only hit shortcuts installed in *earlier* epochs (the lookup sub-phase
/// reads a frozen snapshot), so changing this constant changes hit ratios.
/// Like kBuildEpoch it must never depend on S or the machine — that is what
/// keeps the sweep JSON bit-identical across --shards. Smaller epochs track
/// the paper's fully sequential warm-up more closely; 1024 keeps the
/// deviation below a percent at paper scale while leaving each worker
/// hundreds of sessions of parallel work per barrier.
constexpr std::size_t kFeedEpoch = 1024;

constexpr std::uint32_t kNoPending = 0xFFFFFFFFu;

/// Epoch-scoped intern requests, shared by build producers and feed
/// recorders: the new (not yet pooled) queries a worker emitted this epoch,
/// in emission order, deduplicated by canonical form, and resolved to
/// interned refs by the serial intern sub-phase between the parallel phases.
struct InternRequests {
  /// Phase capability over the buffers: exclusive while the owning worker
  /// fills them (produce/lookup sub-phases) and while the driver interns
  /// (serial sub-phase); shared during apply, where any worker may read any
  /// owner's resolved refs concurrently — and must never mutate them.
  PhaseCapability phase_;
  /// New queries, in emission order.
  std::vector<Query> pending DHTIDX_GUARDED_BY(phase_);
  /// canonical -> idx into pending. Exact-key probes only.
  // dhtidx-lint: allow(hot-path-map) "exact-key dedup probe table, never iterated; cleared every epoch"
  std::unordered_map<std::string, std::uint32_t> pending_index DHTIDX_GUARDED_BY(phase_);
  /// pending[i] -> interned ref.
  std::vector<const Query*> resolved DHTIDX_GUARDED_BY(phase_);

  void reset() DHTIDX_REQUIRES(phase_) {
    pending.clear();
    pending_index.clear();
    resolved.clear();
  }

  /// Resolves `q` to either an already-pooled ref (read-only interner probe)
  /// or a worker-local pending slot. The probe is safe concurrently: the
  /// pool only grows in the serial intern sub-phase between parallel phases.
  void resolve(const query::QueryInterner& interner, Query&& q, const Query*& ref,
               std::uint32_t& pending_slot) DHTIDX_REQUIRES(phase_) {
    if (const Query* existing = interner.find_existing(q)) {
      ref = existing;
      pending_slot = kNoPending;
      return;
    }
    enqueue(std::move(q), ref, pending_slot);
  }

  /// resolve() without taking ownership: probes first and copies `q` only
  /// when it is genuinely new — the common case (an interned query flowing
  /// back through a recorded delta) costs one probe and zero copies.
  void resolve_copy(const query::QueryInterner& interner, const Query& q,
                    const Query*& ref, std::uint32_t& pending_slot)
      DHTIDX_REQUIRES(phase_) {
    if (const Query* existing = interner.find_existing(q)) {
      ref = existing;
      pending_slot = kNoPending;
      return;
    }
    enqueue(Query{q}, ref, pending_slot);
  }

  /// The serial intern sub-phase: the only writes the shared pool ever sees.
  /// intern() probes before inserting, so the same query pending in several
  /// workers resolves to one instance.
  void intern_all(query::QueryInterner& interner) DHTIDX_REQUIRES(phase_) {
    resolved.reserve(pending.size());
    for (Query& q : pending) {
      resolved.push_back(interner.intern(std::move(q)));
    }
  }

  /// The ref an operation resolved at emission time, or its post-intern
  /// resolution when the query was new this epoch.
  const Query* ref_of(const Query* direct, std::uint32_t pending_slot) const
      DHTIDX_REQUIRES_SHARED(phase_) {
    return direct != nullptr ? direct : resolved[pending_slot];
  }

 private:
  void enqueue(Query&& q, const Query*& ref, std::uint32_t& pending_slot)
      DHTIDX_REQUIRES(phase_) {
    const std::string canonical = q.canonical();
    const auto it = pending_index.find(canonical);
    if (it != pending_index.end()) {
      ref = nullptr;
      pending_slot = it->second;
      return;
    }
    pending_slot = static_cast<std::uint32_t>(pending.size());
    pending_index.emplace(canonical, pending_slot);
    pending.push_back(std::move(q));
    ref = nullptr;
  }
};

/// One build-phase operation, totally ordered by (vt, seq): vt is the global
/// article index (disjoint across producers), seq the emission order within
/// the article. Draining a node's operations in this order reproduces the
/// sequential build exactly.
struct Op {
  std::uint64_t vt = 0;
  std::uint32_t seq = 0;
  bool is_store = false;  ///< store a record replica vs publish a mapping
  Id node;                ///< the owning node this op applies to
  // Store ops: the record's DHT key and its index in the producer's epoch
  // record buffer.
  Id key;
  std::uint32_t record = 0;
  // Publish ops: interned refs when the query was already pooled when the
  // producer saw it, else indices into the producer's epoch intern requests
  // (resolved by the serial intern sub-phase).
  const Query* source = nullptr;
  const Query* target = nullptr;
  std::uint32_t source_pending = kNoPending;
  std::uint32_t target_pending = kNoPending;
};

/// One recorded cache mutation of the caching feed, totally ordered by
/// (vt, seq): vt is the global query index (disjoint across feed workers),
/// seq the emission order within the session. Replaying a cache's deltas in
/// this order reproduces the order a sequential pass over the epoch — serving
/// every session against the same frozen snapshot — would have mutated it.
struct CacheDelta {
  enum class Kind : std::uint8_t {
    kTouch,       ///< a hit promoted the entry to most recently used
    kInstall,     ///< shortcut creation after a successful session
    kInvalidate,  ///< a failed jump dropped the stale entry
  };

  std::uint64_t vt = 0;
  std::uint32_t seq = 0;
  Kind kind = Kind::kTouch;
  Id node;  ///< the node whose cache this delta applies to
  // Interned refs when the query was pooled at record time, else indices
  // into the recorder's epoch intern requests.
  const Query* source = nullptr;
  const Query* target = nullptr;
  std::uint32_t source_pending = kNoPending;
  std::uint32_t target_pending = kNoPending;
};

/// Node id -> owning shard: position in the sorted member list modulo S.
/// Membership is fixed for the whole run (streaming mode forbids churn).
class ShardMap {
 public:
  ShardMap(std::vector<Id> members, std::size_t shards)
      : members_(std::move(members)), shards_(shards) {
    std::sort(members_.begin(), members_.end());
  }

  std::size_t shard_of(const Id& node) const {
    const auto it = std::lower_bound(members_.begin(), members_.end(), node);
    return static_cast<std::size_t>(it - members_.begin()) % shards_;
  }

  const std::vector<Id>& members() const { return members_; }

 private:
  std::vector<Id> members_;
  std::size_t shards_;
};

/// Per-producer epoch state: the record buffer, the queue per owner shard,
/// and the intern requests this producer will hand to the serial intern
/// sub-phase.
struct Producer {
  /// Phase capability over the epoch buffers below. Exclusive during the
  /// produce sub-phase (the owning worker is the sole writer) and the serial
  /// intern sub-phase (the driver is alone); shared during the apply
  /// sub-phase, where every worker reads any producer's queues, records and
  /// resolved refs concurrently — and must therefore never mutate them (the
  /// "no move-on-last-replica fast path" rule below).
  PhaseCapability phase_;
  std::vector<storage::Record> records DHTIDX_GUARDED_BY(phase_);
  InternRequests interns;
  /// One queue per owner shard, (vt,seq)-sorted by construction.
  std::vector<std::vector<Op>> queues DHTIDX_GUARDED_BY(phase_);

  void reset(std::size_t shards) DHTIDX_REQUIRES(phase_) {
    records.clear();
    interns.phase_.assert_exclusive();  // same phase structure as the owner
    interns.reset();
    queues.assign(shards, {});
  }
};

/// Per-feed-worker epoch state: the record-don't-mutate hook attached to the
/// worker's LookupEngine during the lookup sub-phase. Every intended cache
/// mutation is tagged with the session's virtual time and binned by the
/// owner shard of the node it applies to; queries not yet in the shared pool
/// become intern requests, exactly like the build's publish operations.
class FeedRecorder final : public index::CacheDeltaRecorder {
 public:
  FeedRecorder(const query::QueryInterner& interner, const ShardMap& shard_map)
      : interner_(interner), shard_map_(shard_map) {}

  /// Phase capability over the epoch buffers: exclusive during the lookup
  /// sub-phase (worker-private) and the serial intern sub-phase; shared
  /// during apply, where every applier reads any recorder's queues.
  PhaseCapability phase_;
  InternRequests interns;
  /// One queue per owner shard, (vt,seq)-sorted by construction.
  std::vector<std::vector<CacheDelta>> queues DHTIDX_GUARDED_BY(phase_);

  void reset(std::size_t shards) DHTIDX_REQUIRES(phase_) {
    interns.phase_.assert_exclusive();  // same phase structure as the owner
    interns.reset();
    queues.assign(shards, {});
    vt_ = 0;
    seq_ = 0;
  }

  /// Stamps the virtual time of the session about to run; deltas emitted
  /// until the next call carry (query_index, running seq).
  void begin_session(std::uint64_t query_index) DHTIDX_REQUIRES(phase_) {
    vt_ = query_index;
    seq_ = 0;
  }

  void record_touch(const Id& node, const Query& source, const Query& target) override {
    push(CacheDelta::Kind::kTouch, node, source, target);
  }

  void record_install(const Id& node, const Query& source, const Query& target) override {
    push(CacheDelta::Kind::kInstall, node, source, target);
  }

  void record_invalidate(const Id& node, const Query& source,
                         const Query& target) override {
    push(CacheDelta::Kind::kInvalidate, node, source, target);
  }

 private:
  void push(CacheDelta::Kind kind, const Id& node, const Query& source,
            const Query& target) {
    phase_.assert_exclusive();  // lookup sub-phase: the worker is the sole owner
    interns.phase_.assert_exclusive();
    CacheDelta delta;
    delta.vt = vt_;
    delta.seq = seq_++;
    delta.kind = kind;
    delta.node = node;
    interns.resolve_copy(interner_, source, delta.source, delta.source_pending);
    interns.resolve_copy(interner_, target, delta.target, delta.target_pending);
    queues[shard_map_.shard_of(node)].push_back(delta);
  }

  const query::QueryInterner& interner_;
  const ShardMap& shard_map_;
  std::uint64_t vt_ DHTIDX_GUARDED_BY(phase_) = 0;
  std::uint32_t seq_ DHTIDX_GUARDED_BY(phase_) = 0;
};

/// Runs `body(0..count-1)` on `count` workers; inline when count == 1 (the
/// single-shard path uses the exact same code, just without threads). The
/// join is the phase barrier; the first worker exception is rethrown.
void run_workers(std::size_t count, const std::function<void(std::size_t)>& body) {
  if (count <= 1) {
    body(0);
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  std::vector<std::thread> pool;
  pool.reserve(count);
  for (std::size_t w = 0; w < count; ++w) {
    pool.emplace_back([&errors, &body, w] {
      try {
        body(w);
      } catch (...) {
        errors[w] = std::current_exception();
      }
    });
  }
  for (std::thread& t : pool) t.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

/// S-way merge: drains `queues` (each already (vt, seq)-sorted, with vt
/// values disjoint across queues) in ascending global (vt, seq) order,
/// calling apply(queue_index, element) for each element. This is the one
/// total order both the build's operations and the feed's cache deltas
/// replay in — the order the sequential pass would have used.
template <typename T, typename Fn>
void merge_by_virtual_time(const std::vector<const std::vector<T>*>& queues, Fn&& apply) {
  std::vector<std::size_t> cursor(queues.size(), 0);
  while (true) {
    std::size_t best = queues.size();
    std::uint64_t best_vt = 0;
    std::uint32_t best_seq = 0;
    for (std::size_t p = 0; p < queues.size(); ++p) {
      const std::vector<T>& queue = *queues[p];
      if (cursor[p] >= queue.size()) continue;
      const T& item = queue[cursor[p]];
      if (best == queues.size() || item.vt < best_vt ||
          (item.vt == best_vt && item.seq < best_seq)) {
        best = p;
        best_vt = item.vt;
        best_seq = item.seq;
      }
    }
    if (best == queues.size()) break;
    apply(best, (*queues[best])[cursor[best]++]);
  }
}

/// Per-feed-worker accumulator: integer sums and a private traffic ledger,
/// both folded after the final barrier. Merging is commutative and exact, so
/// the totals match a one-worker feed bit for bit.
struct FeedAccumulator {
  std::uint64_t interactions = 0;
  std::uint64_t generalizations = 0;
  std::uint64_t hits = 0;
  std::uint64_t first_node_hits = 0;
  std::uint64_t rpc_failures = 0;
  std::size_t failed_lookups = 0;
  std::size_t non_indexed = 0;
  std::size_t degraded = 0;
  std::size_t gave_up = 0;
  std::size_t unreachable = 0;
  std::size_t stale_shortcuts = 0;
  /// Unique-node touches per session; folded into FeedTotals::node_touches.
  // dhtidx-lint: allow(hot-path-map) "merged once per feed; sorted iteration drives deterministic load fractions"
  std::map<Id, std::uint64_t> node_touches;
  net::TrafficLedger ledger;

  void fold_outcome(const index::LookupOutcome& outcome) {
    interactions += static_cast<std::uint64_t>(outcome.interactions);
    generalizations += static_cast<std::uint64_t>(outcome.generalization_steps);
    if (!outcome.found) ++failed_lookups;
    if (outcome.non_indexed) ++non_indexed;
    if (outcome.cache_hit) {
      ++hits;
      if (outcome.cache_hit_position == 1) ++first_node_hits;
    }
    rpc_failures += static_cast<std::uint64_t>(outcome.rpc_failures);
    if (outcome.degraded) ++degraded;
    if (outcome.gave_up) ++gave_up;
    if (outcome.unreachable) ++unreachable;
    stale_shortcuts += static_cast<std::size_t>(outcome.stale_shortcuts);
    const std::set<Id> unique_nodes(outcome.visited_nodes.begin(),
                                    outcome.visited_nodes.end());
    for (const Id& node : unique_nodes) ++node_touches[node];
  }
};

}  // namespace

void build_streaming_world(const SimulationConfig& config, dht::Dht& dht,
                           index::IndexService& service, storage::DhtStore& store,
                           const biblio::ArticleStream& stream) {
  const std::size_t shards = std::max<std::size_t>(config.shards, 1);
  const index::IndexingScheme scheme = index::IndexingScheme::make(config.scheme);
  query::QueryInterner& interner = service.interner();
  const std::size_t replication = service.replication();

  // Pre-create every node's index partition and record store. The outer
  // FlatMaps are structurally frozen before any worker runs: parallel phases
  // only mutate values they own, never the maps themselves (a FlatMap insert
  // would invalidate every other worker's references).
  const ShardMap shard_map{dht.node_ids(), shards};
  for (const Id& node : shard_map.members()) {
    service.state_at(node);
    store.node_store(node);
  }

  std::vector<Producer> producers(shards);
  const std::size_t total = stream.size();

  for (std::size_t epoch_start = 0; epoch_start < total; epoch_start += kBuildEpoch) {
    const std::size_t epoch_end = std::min(total, epoch_start + kBuildEpoch);
    for (Producer& producer : producers) {
      producer.phase_.assert_exclusive();  // between epochs: no workers running
      producer.reset(shards);
    }

    // (produce) -- synthesize articles, compute placements, emit operations.
    // Producer p owns articles i with i % S == p, walked in increasing i, so
    // each queue is (vt, seq)-sorted by construction.
    run_workers(shards, [&](std::size_t p) {
      Producer& producer = producers[p];
      producer.phase_.assert_exclusive();  // worker p is producer p's sole owner
      producer.interns.phase_.assert_exclusive();
      for (std::size_t i = epoch_start; i < epoch_end; ++i) {
        if (i % shards != p) continue;
        const biblio::Article article = stream.article(i);
        const xml::Element descriptor = article.descriptor();
        const Query msd = Query::most_specific(descriptor);
        std::uint32_t seq = 0;

        // The stored file record, one op per replica placement (mirrors
        // DhtStore::put under a healthy network: the replica set of the
        // MSD's key, primary first).
        storage::Record record;
        record.kind = "file:" + article.file_name();
        record.payload = xml::write(descriptor, {.pretty = false});
        record.virtual_payload_bytes = article.file_bytes;
        const Id file_key = msd.key();
        const std::uint32_t record_slot = static_cast<std::uint32_t>(producer.records.size());
        producer.records.push_back(std::move(record));
        const std::vector<Id> file_replicas = dht.replica_set(file_key, replication);
        for (std::size_t c = 0; c < file_replicas.size(); ++c) {
          Op op;
          op.vt = i;
          op.seq = seq++;
          op.is_store = true;
          op.node = file_replicas[c];
          op.key = file_key;
          op.record = record_slot;
          producer.queues[shard_map.shard_of(op.node)].push_back(op);
        }

        // The scheme's mappings, one op per replica placement of the source
        // key (mirrors IndexService::insert_interned).
        std::vector<index::Mapping> mappings = scheme.mappings_for(msd);
        for (index::Mapping& m : mappings) {
          const Id source_key = m.source.key();
          Op op;
          op.vt = i;
          producer.interns.resolve(interner, std::move(m.source), op.source,
                                   op.source_pending);
          producer.interns.resolve(interner, std::move(m.target), op.target,
                                   op.target_pending);
          for (const Id& replica : dht.replica_set(source_key, replication)) {
            Op placed = op;
            placed.seq = seq++;
            placed.node = replica;
            producer.queues[shard_map.shard_of(replica)].push_back(placed);
          }
        }
      }
    });

    // (intern) -- the only writes the shared pool ever sees, serialized in
    // the driver.
    for (Producer& producer : producers) {
      producer.phase_.assert_exclusive();  // serial sub-phase: driver is alone
      producer.interns.phase_.assert_exclusive();
      producer.interns.intern_all(interner);
    }

    // (apply) -- worker t drains the S queues addressed to its shard with an
    // S-way merge by (vt, seq), applying each operation to the owned node.
    run_workers(shards, [&](std::size_t t) {
      std::vector<const std::vector<Op>*> queues;
      queues.reserve(shards);
      for (std::size_t p = 0; p < shards; ++p) {
        producers[p].phase_.assert_shared();  // apply sub-phase: buffers frozen
        queues.push_back(&producers[p].queues[t]);
      }
      merge_by_virtual_time<Op>(queues, [&](std::size_t p, const Op& op) {
        // Appliers only ever *read* producer state: a record replicated
        // across nodes owned by different shards is copied concurrently, so
        // there must be no mutating fast path (a "move on last replica"
        // would race with another shard's copy of the same record).
        const Producer& producer = producers[p];
        producer.phase_.assert_shared();  // read-only rights, shared with peers
        producer.interns.phase_.assert_shared();
        if (op.is_store) {
          storage::NodeStore* node_store = store.find_node_store(op.node);
          node_store->put(op.key, producer.records[op.record]);
        } else {
          const Query* source = producer.interns.ref_of(op.source, op.source_pending);
          const Query* target = producer.interns.ref_of(op.target, op.target_pending);
          // No covering check here: the scheme guarantees source ⊒ target by
          // construction and the DHTIDX_AUDIT pass re-verifies it.
          service.find_state(op.node)->add_interned(source, target, 0);
        }
      });
    });
  }
}

FeedTotals feed_streaming_world(const SimulationConfig& config, dht::Dht& dht,
                                index::IndexService& service,
                                storage::DhtStore& store,
                                const workload::StreamingWorkload& workload) {
  const std::size_t shards = std::max<std::size_t>(config.shards, 1);
  std::vector<FeedAccumulator> accumulators(shards);
  std::vector<net::TrafficLedger> apply_ledgers(shards);

  if (!caching_enabled(config.policy)) {
    // Cacheless feed: sessions are read-only on all shared state, so one
    // parallel pass over the whole feed suffices — no epochs, no barriers.
    run_workers(shards, [&](std::size_t w) {
      FeedAccumulator& acc = accumulators[w];
      const net::ScopedLedgerOverride scope{&acc.ledger};
      index::LookupEngine engine{service, store, {config.policy}};
      for (std::size_t i = 0; i < config.queries; ++i) {
        if (i % shards != w) continue;
        const workload::StreamingRequest request = workload.request_at(i);
        acc.fold_outcome(engine.resolve(request.query, request.target_msd));
      }
    });
  } else {
    // Caching feed: bulk-synchronous query epochs (DESIGN.md section 15).
    // Sessions read the shortcut caches as a frozen snapshot and record
    // their intended mutations; the apply sub-phase replays the deltas in
    // (vt, seq) order, so every cache evolves in the exact order a
    // sequential pass over the epochs would have produced — for every S,
    // including S = 1.
    const ShardMap shard_map{dht.node_ids(), shards};
    query::QueryInterner& interner = service.interner();
    std::vector<FeedRecorder> recorders;
    recorders.reserve(shards);
    for (std::size_t w = 0; w < shards; ++w) {
      recorders.emplace_back(interner, shard_map);
    }

    for (std::size_t epoch_start = 0; epoch_start < config.queries;
         epoch_start += kFeedEpoch) {
      const std::size_t epoch_end =
          std::min(config.queries, epoch_start + kFeedEpoch);
      for (FeedRecorder& recorder : recorders) {
        recorder.phase_.assert_exclusive();  // between epochs: no workers running
        recorder.reset(shards);
      }

      // (lookup) -- worker w serves the sessions with index ≡ w (mod S)
      // read-only, recording cache deltas. Walked in increasing i, so each
      // queue is (vt, seq)-sorted by construction.
      run_workers(shards, [&](std::size_t w) {
        FeedAccumulator& acc = accumulators[w];
        const net::ScopedLedgerOverride scope{&acc.ledger};
        FeedRecorder& recorder = recorders[w];
        recorder.phase_.assert_exclusive();  // worker w is recorder w's sole owner
        index::LookupEngine engine{service, store, {config.policy}};
        engine.set_cache_recorder(&recorder);
        for (std::size_t i = epoch_start; i < epoch_end; ++i) {
          if (i % shards != w) continue;
          recorder.begin_session(i);
          const workload::StreamingRequest request = workload.request_at(i);
          acc.fold_outcome(engine.resolve(request.query, request.target_msd));
        }
      });

      // (intern) -- resolve the epoch's new queries against the shared pool,
      // serialized in the driver.
      for (FeedRecorder& recorder : recorders) {
        recorder.phase_.assert_exclusive();  // serial sub-phase: driver is alone
        recorder.interns.phase_.assert_exclusive();
        recorder.interns.intern_all(interner);
      }

      // (apply) -- worker t merges the delta queues addressed to its shard
      // by (vt, seq) and replays them against the caches it owns. Install
      // traffic is charged here, exactly when an insert creates an entry
      // (the sequential rule), into a per-applier ledger folded at the end.
      run_workers(shards, [&](std::size_t t) {
        const net::ScopedLedgerOverride scope{&apply_ledgers[t]};
        net::TrafficLedger& ledger = net::active(service.ledger());
        std::vector<const std::vector<CacheDelta>*> queues;
        queues.reserve(shards);
        for (std::size_t p = 0; p < shards; ++p) {
          recorders[p].phase_.assert_shared();  // apply sub-phase: buffers frozen
          queues.push_back(&recorders[p].queues[t]);
        }
        merge_by_virtual_time<CacheDelta>(queues, [&](std::size_t p,
                                                      const CacheDelta& delta) {
          const FeedRecorder& recorder = recorders[p];
          recorder.phase_.assert_shared();  // read-only rights, shared with peers
          recorder.interns.phase_.assert_shared();
          const Query* source = recorder.interns.ref_of(delta.source, delta.source_pending);
          const Query* target = recorder.interns.ref_of(delta.target, delta.target_pending);
          index::IndexNodeState* state = service.find_state(delta.node);
          if (state == nullptr) {
            throw InvariantError(
                "sharded feed: cache delta addressed to a node with no index "
                "partition (build pre-creates every partition)");
          }
          index::ShortcutCache& cache = state->cache();
          switch (delta.kind) {
            case CacheDelta::Kind::kTouch:
              // The entry was present in the snapshot; an earlier delta of
              // this epoch may have evicted or invalidated it, in which case
              // the touch is a no-op — same as the sequential replay.
              cache.touch_interned(source, target);
              break;
            case CacheDelta::Kind::kInstall:
              if (cache.insert_interned(source, target)) {
                ledger.cache.record(source->byte_size() + target->byte_size() +
                                    net::kMessageOverheadBytes);
              }
              break;
            case CacheDelta::Kind::kInvalidate:
              // Idempotent: two sessions of one epoch may have jumped on the
              // same stale entry; the second erase finds nothing. The
              // invalidation notice was charged at record time.
              cache.erase_interned(source, target);
              break;
          }
        });
      });
    }
  }

  FeedTotals totals;
  for (const FeedAccumulator& acc : accumulators) {
    totals.interactions += acc.interactions;
    totals.generalizations += acc.generalizations;
    totals.hits += acc.hits;
    totals.first_node_hits += acc.first_node_hits;
    totals.rpc_failures += acc.rpc_failures;
    totals.failed_lookups += acc.failed_lookups;
    totals.non_indexed += acc.non_indexed;
    totals.degraded += acc.degraded;
    totals.gave_up += acc.gave_up;
    totals.unreachable += acc.unreachable;
    totals.stale_shortcuts += acc.stale_shortcuts;
    for (const auto& [node, touches] : acc.node_touches) {
      totals.node_touches[node] += touches;
    }
    totals.ledger.merge(acc.ledger);
  }
  for (const net::TrafficLedger& ledger : apply_ledgers) {
    totals.ledger.merge(ledger);
  }
  return totals;
}

SimulationResults run_streaming_simulation(const SimulationConfig& config) {
  const std::size_t shards = std::max<std::size_t>(config.shards, 1);
  if (config.substrate != Substrate::kRing) {
    throw InvariantError("streaming simulation requires the ring substrate");
  }
  if (config.churn.enabled()) {
    throw InvariantError("streaming simulation does not support churn");
  }
  if (config.transport != TransportKind::kInProcess) {
    throw InvariantError("streaming simulation requires the in-process transport");
  }
  if (shards > 1 && !config.streaming) {
    throw InvariantError("shards > 1 requires a streaming world (config.streaming)");
  }

  dht::Ring ring = dht::Ring::with_nodes(config.nodes);
  net::TrafficLedger ledger;
  storage::DhtStore store{ring, ledger, config.replication};
  index::IndexService service{ring, ledger, config.cache_capacity, config.replication};
  const biblio::ArticleStream stream{config.corpus};

  const auto build_start = std::chrono::steady_clock::now();
  build_streaming_world(config, ring, service, store, stream);
  const double build_wall_s = wall_seconds_since(build_start);

#ifdef DHTIDX_AUDIT
  const index::IndexingScheme audit_scheme = index::IndexingScheme::make(config.scheme);
  audit::Options audit_options;
  audit_options.scheme = &audit_scheme;
  audit::audit_or_throw("post-build", ring, service, store, audit_options);
#endif
  // Index construction traffic is not part of the per-query measurements
  // (same rule as the sequential driver; the sharded build charges nothing,
  // but the audit hooks above may have).
  ledger.reset();

  // --- run the query feed ----------------------------------------------------
  workload::PopularityModel popularity{stream.size(), config.popularity_c,
                                       config.popularity_alpha};
  workload::StructureModel structure =
      config.structure_weights.empty() ? workload::StructureModel{}
                                       : workload::StructureModel{config.structure_weights};
  const workload::StreamingWorkload workload{stream, std::move(popularity),
                                             std::move(structure), config.seed};

  const auto feed_start = std::chrono::steady_clock::now();
  const FeedTotals feed = feed_streaming_world(config, ring, service, store, workload);
  const double feed_wall_s = wall_seconds_since(feed_start);

  // --- collect metrics -------------------------------------------------------
  SimulationResults r;
  r.scheme = config.scheme;
  r.policy = config.policy;
  r.cache_capacity = config.cache_capacity;
  r.nodes = config.nodes;
  r.articles = stream.size();
  r.queries = config.queries;
  r.replication = config.replication;
  r.transport = config.transport;
  r.build_wall_s = build_wall_s;
  r.feed_wall_s = feed_wall_s;
  r.peak_rss_bytes = dhtidx::peak_rss_bytes();

  r.rpc_failures = feed.rpc_failures;
  r.failed_lookups = feed.failed_lookups;
  r.non_indexed_queries = feed.non_indexed;
  r.degraded_sessions = feed.degraded;
  r.gave_up_sessions = feed.gave_up;
  r.unreachable_sessions = feed.unreachable;
  r.stale_shortcut_invalidations = feed.stale_shortcuts;
  ledger.merge(feed.ledger);

  const double n_queries = static_cast<double>(config.queries);
  r.avg_interactions = static_cast<double>(feed.interactions) / n_queries;
  r.avg_generalization_steps = static_cast<double>(feed.generalizations) / n_queries;
  r.normal_traffic_per_query = static_cast<double>(ledger.normal_bytes()) / n_queries;
  r.cache_traffic_per_query = static_cast<double>(ledger.cache.bytes()) / n_queries;
  r.hit_ratio = static_cast<double>(feed.hits) / n_queries;
  r.first_node_hit_share =
      feed.hits == 0 ? 0.0
                     : static_cast<double>(feed.first_node_hits) /
                           static_cast<double>(feed.hits);
  r.ledger = ledger;

  // Cache occupancy over all nodes, as in the sequential driver.
  std::uint64_t cached_total = 0;
  std::size_t full = 0;
  std::size_t empty = 0;
  std::size_t max_cached = 0;
  const std::vector<Id> nodes = ring.node_ids();
  for (const Id& node : nodes) {
    std::size_t size = 0;
    if (const index::IndexNodeState* state = service.find_state(node); state != nullptr) {
      size = state->cache().size();
    }
    cached_total += size;
    max_cached = std::max(max_cached, size);
    if (size == 0) ++empty;
    if (config.cache_capacity != 0 && size >= config.cache_capacity) ++full;
  }
  const double n_nodes = static_cast<double>(nodes.size());
  r.avg_cached_keys_per_node = static_cast<double>(cached_total) / n_nodes;
  r.max_cached_keys = max_cached;
  r.full_cache_fraction = static_cast<double>(full) / n_nodes;
  r.empty_cache_fraction = static_cast<double>(empty) / n_nodes;

  const index::IndexService::Totals totals = service.totals();
  std::size_t stored_keys = 0;
  for (const auto& [node, node_store] : store.node_stores()) {
    stored_keys += node_store.key_count();
  }
  r.avg_regular_keys_per_node = static_cast<double>(totals.keys + stored_keys) / n_nodes;
  r.index_keys = totals.keys;
  r.index_mappings = totals.mappings;
  r.index_bytes = totals.bytes;
  r.data_bytes = store.total_bytes();

  r.node_load_fractions.reserve(nodes.size());
  for (const Id& node : nodes) {
    const auto it = feed.node_touches.find(node);
    const double touches =
        it == feed.node_touches.end() ? 0.0 : static_cast<double>(it->second);
    r.node_load_fractions.push_back(touches / n_queries);
  }
  std::sort(r.node_load_fractions.begin(), r.node_load_fractions.end(), std::greater<>());

#ifdef DHTIDX_AUDIT
  audit::audit_or_throw("post-run", ring, service, store, audit_options);
#endif

  return r;
}

}  // namespace dhtidx::sim
