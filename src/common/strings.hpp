// Small string utilities used throughout the library.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace dhtidx {

/// Splits `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Strips leading/trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True when `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

}  // namespace dhtidx
