#include "common/distributions.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dhtidx {

DiscreteSampler::DiscreteSampler(const std::vector<double>& weights) {
  if (weights.empty()) throw InvariantError("DiscreteSampler needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw InvariantError("DiscreteSampler weights must be finite and non-negative");
    }
    total += w;
  }
  if (total <= 0.0) throw InvariantError("DiscreteSampler weights must sum to > 0");
  cumulative_.reserve(weights.size());
  double acc = 0.0;
  for (const double w : weights) {
    acc += w / total;
    cumulative_.push_back(acc);
  }
  cumulative_.back() = 1.0;  // guard against rounding drift
}

std::size_t DiscreteSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(std::distance(cumulative_.begin(), it));
}

double DiscreteSampler::probability(std::size_t i) const {
  if (i >= cumulative_.size()) return 0.0;
  return i == 0 ? cumulative_[0] : cumulative_[i] - cumulative_[i - 1];
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  if (n == 0) throw InvariantError("ZipfSampler needs n > 0");
  cumulative_.reserve(n);
  double acc = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i), exponent);
    cumulative_.push_back(acc);
  }
  for (double& c : cumulative_) c /= acc;
  cumulative_.back() = 1.0;
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(std::distance(cumulative_.begin(), it)) + 1;
}

double ZipfSampler::probability(std::size_t rank) const {
  if (rank == 0 || rank > cumulative_.size()) return 0.0;
  return rank == 1 ? cumulative_[0] : cumulative_[rank - 1] - cumulative_[rank - 2];
}

PowerLawPopularity::PowerLawPopularity(std::size_t n, double c, double alpha)
    : n_(n), c_(c), alpha_(alpha) {
  if (n == 0) throw InvariantError("PowerLawPopularity needs n > 0");
  if (c <= 0.0 || alpha <= 0.0) {
    throw InvariantError("PowerLawPopularity parameters must be positive");
  }
  normalizer_ = c_ * std::pow(static_cast<double>(n_), alpha_);
  // With the paper's parameters the normalizer is ~0.9986: the raw fit
  // already nearly reaches 1 at rank 10,000. Dividing by it "adapts the
  // parameters to match the finite population" exactly as Section V-C does.
}

double PowerLawPopularity::cdf(std::size_t rank) const {
  if (rank == 0) return 0.0;
  if (rank >= n_) return 1.0;
  return c_ * std::pow(static_cast<double>(rank), alpha_) / normalizer_;
}

double PowerLawPopularity::probability(std::size_t rank) const {
  if (rank == 0 || rank > n_) return 0.0;
  return cdf(rank) - cdf(rank - 1);
}

std::size_t PowerLawPopularity::sample(Rng& rng) const {
  // Inverse-transform sampling on the continuous extension of the CDF:
  // F(x) = c x^alpha / Z  =>  x = (u Z / c)^(1/alpha), then round up to the
  // containing integer rank.
  const double u = rng.next_double();
  const double x = std::pow(u * normalizer_ / c_, 1.0 / alpha_);
  auto rank = static_cast<std::size_t>(std::ceil(x));
  if (rank < 1) rank = 1;
  if (rank > n_) rank = n_;
  return rank;
}

}  // namespace dhtidx
