// Clang Thread Safety Analysis vocabulary for the dhtidx tree.
//
// The repo's headline guarantees -- sweep JSON bit-identical across --jobs
// and across --shards -- rest on lock- and phase-discipline contracts that
// used to live in comments and TSan runs. These macros turn them into
// compiler-checked annotations: under clang with -Wthread-safety (the
// DHTIDX_THREAD_SAFETY CMake option, a blocking CI job) every access to a
// DHTIDX_GUARDED_BY field must prove it holds the named capability; under
// every other compiler they expand to nothing, so the gcc build is unchanged.
//
// Two capability species are used in this tree:
//
//  - dhtidx::Mutex / dhtidx::MutexLock: a real lock. libstdc++'s std::mutex
//    carries no capability attributes, so the analysis cannot see through
//    std::lock_guard; this thin wrapper is the annotated equivalent and the
//    only mutex type new code should declare (dhtidx_lint's unguarded-mutex
//    check enforces that every mutex member guards at least one field).
//
//  - dhtidx::PhaseCapability: a zero-cost fictitious capability standing for
//    a contract enforced by structure rather than by a lock -- a
//    barrier-delimited execution phase (the sharded build's produce / intern
//    / apply sub-phases), a thread_local slot, or single-owner state. It
//    cannot be acquired; code *asserts* it where the surrounding structure
//    guarantees exclusivity, and the analyzer then checks that every touch
//    of a guarded field declares which contract it relies on. DESIGN.md
//    section 13 is the capability map.
#pragma once

#include <mutex>

#if defined(__clang__)
#define DHTIDX_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define DHTIDX_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (diagnostics name it by `x`).
#define DHTIDX_CAPABILITY(x) DHTIDX_THREAD_ANNOTATION(capability(x))

/// Declares an RAII class that acquires a capability in its constructor and
/// releases it in its destructor.
#define DHTIDX_SCOPED_CAPABILITY DHTIDX_THREAD_ANNOTATION(scoped_lockable)

/// The annotated field may only be read while holding the capability shared
/// and only written while holding it exclusively.
#define DHTIDX_GUARDED_BY(x) DHTIDX_THREAD_ANNOTATION(guarded_by(x))

/// As DHTIDX_GUARDED_BY, but guards the data a pointer field points at.
#define DHTIDX_PT_GUARDED_BY(x) DHTIDX_THREAD_ANNOTATION(pt_guarded_by(x))

/// The annotated function may only be called while holding the capabilities
/// exclusively (callers must already hold them; the function does not
/// acquire).
#define DHTIDX_REQUIRES(...) \
  DHTIDX_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// As DHTIDX_REQUIRES, for shared (read) access.
#define DHTIDX_REQUIRES_SHARED(...) \
  DHTIDX_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability and holds it on return.
#define DHTIDX_ACQUIRE(...) \
  DHTIDX_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define DHTIDX_ACQUIRE_SHARED(...) \
  DHTIDX_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the capability (held on entry).
#define DHTIDX_RELEASE(...) \
  DHTIDX_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define DHTIDX_RELEASE_SHARED(...) \
  DHTIDX_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns `x`.
#define DHTIDX_TRY_ACQUIRE(...) \
  DHTIDX_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// The caller must NOT hold the capability (anti-deadlock: the function
/// acquires it itself).
#define DHTIDX_EXCLUDES(...) DHTIDX_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The annotated function verifies (by structure or at runtime) that the
/// capability is held, without acquiring it: the analyzer treats it as held
/// for the remainder of the calling scope.
#define DHTIDX_ASSERT_CAPABILITY(...) \
  DHTIDX_THREAD_ANNOTATION(assert_capability(__VA_ARGS__))
#define DHTIDX_ASSERT_SHARED_CAPABILITY(...) \
  DHTIDX_THREAD_ANNOTATION(assert_shared_capability(__VA_ARGS__))

/// The annotated function returns a reference to the named capability.
#define DHTIDX_RETURN_CAPABILITY(x) DHTIDX_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the annotated function body is not analyzed. Every use
/// needs a comment saying why the analysis cannot see the invariant.
#define DHTIDX_NO_THREAD_SAFETY_ANALYSIS \
  DHTIDX_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace dhtidx {

/// std::mutex with the capability attributes libstdc++ omits. Lock it with
/// MutexLock so acquisition and release are visible to the analysis.
class DHTIDX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() DHTIDX_ACQUIRE() { mutex_.lock(); }
  void unlock() DHTIDX_RELEASE() { mutex_.unlock(); }
  bool try_lock() DHTIDX_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

/// RAII exclusive lock over a dhtidx::Mutex (the annotated std::lock_guard).
class DHTIDX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mutex) DHTIDX_ACQUIRE(mutex) : mutex_(mutex) {
    mutex_.lock();
  }
  ~MutexLock() DHTIDX_RELEASE() { mutex_.unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mutex_;
};

/// A capability with no runtime lock behind it: exclusivity comes from the
/// program's structure (a barrier between phases, thread_local storage, a
/// single owner), so there is nothing to acquire -- code asserts the
/// capability where the structure guarantees it, at zero cost, and the
/// analyzer checks that every access to a guarded field names the contract
/// it relies on. Misuse shows up as a missing assert at compile time, not as
/// a data race at 100x scale.
class DHTIDX_CAPABILITY("phase") PhaseCapability {
 public:
  /// The surrounding structure gives the caller exclusive (write) rights:
  /// it is the only thread inside a serial phase, the owner of a
  /// thread_local slot, or the designated writer of a partition.
  void assert_exclusive() const DHTIDX_ASSERT_CAPABILITY() {}

  /// The surrounding structure gives the caller shared (read) rights: the
  /// guarded state is frozen for the duration of a concurrent phase.
  void assert_shared() const DHTIDX_ASSERT_SHARED_CAPABILITY() {}
};

}  // namespace dhtidx
