// Error types shared across the dhtidx libraries.
//
// All recoverable failures in the library surface as exceptions derived from
// dhtidx::Error, so callers can catch the whole family with one handler.
#pragma once

#include <stdexcept>
#include <string>

namespace dhtidx {

/// Base class of every exception thrown by the dhtidx libraries.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input (XML documents, XPath query strings, config values).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// A lookup addressed a key or node that does not exist.
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error("not found: " + what) {}
};

/// An operation violated a protocol-level precondition (e.g. inserting an
/// index mapping whose source does not cover its target).
class InvariantError : public Error {
 public:
  explicit InvariantError(const std::string& what) : Error("invariant violation: " + what) {}
};

}  // namespace dhtidx
