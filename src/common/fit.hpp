// Least-squares fitting helpers.
//
// Section V-C derives the popularity power law by fitting a line to the
// log-log plot of BibFinder author probabilities "using the minimum square
// method". fit_power_law reproduces that procedure: it regresses log(p) on
// log(rank) and reports the implied p = k * rank^exponent model.
#pragma once

#include <cstddef>
#include <vector>

namespace dhtidx {

/// Result of an ordinary least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;  // coefficient of determination
};

/// Fits a straight line to (x, y) pairs. Requires at least two points.
LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// A fitted power law p(rank) = k * rank^exponent.
struct PowerLawFit {
  double k = 0.0;
  double exponent = 0.0;  // negative for decaying popularity curves
  double r_squared = 0.0;
};

/// Fits a power law to per-rank probabilities (rank 1 first) by linear
/// regression in log-log space. Zero probabilities are skipped, matching the
/// usual treatment of empirical tails.
PowerLawFit fit_power_law(const std::vector<double>& probabilities_by_rank);

}  // namespace dhtidx
