// Sorted-vector map: the hot-path replacement for std::map.
//
// The simulation probes per-node containers (DhtStore's stores, the index
// service's node states, a NodeStore's key multimap) millions of times per
// sweep cell. std::map pays a heap allocation per element and a pointer
// chase per comparison; FlatMap keeps the elements in one contiguous sorted
// vector, so probes are cache-friendly binary searches and full scans are
// linear walks.
//
// Iteration visits elements in strictly ascending key order -- exactly the
// order std::map delivers. This is a hard requirement, not an accident:
// sweep results must stay bit-identical (PR 1), and several consumers
// (traffic accounting, rebalance passes, the auditor, snapshots) derive
// observable behaviour from container iteration order.
//
// Deliberate deviations from std::map:
//   - insert/erase invalidate ALL iterators and references (vector storage).
//     Callers must not hold references across mutations; the hot paths were
//     audited for this when the container was introduced. PR 5's rebalance
//     hit exactly this trap once (destination reference bound before a
//     source insertion moved the vector), so the map now keeps a generation
//     counter bumped on every structural mutation, and FlatMap::Ref wraps an
//     element reference that traps (throws std::logic_error) if dereferenced
//     after any later mutation instead of reading freed memory. Cold paths
//     that must hold a reference across possible mutations use Ref; hot
//     paths keep raw references and stay audited.
//   - value_type is std::pair<Key, Value> (non-const key) so elements can be
//     moved during insertion; don't mutate keys through iterators.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace dhtidx {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  FlatMap() = default;

  /// A generation-checked handle to one mapped value. Dereferencing after
  /// any structural mutation of the owning map throws instead of touching a
  /// dangling reference. The check is one integer compare, so it stays on in
  /// release builds.
  class Ref {
   public:
    Ref(FlatMap& map, const Key& key)
        : map_(&map), value_(&map.at(key)), generation_(map.generation()) {}

    Value& get() const {
      if (map_->generation() != generation_) {
        throw std::logic_error(
            "FlatMap::Ref: stale reference (map mutated since binding)");
      }
      return *value_;
    }
    Value& operator*() const { return get(); }
    Value* operator->() const { return &get(); }

    /// Re-reads the current generation after an intentional mutation. Only
    /// valid when the referenced element is known to still exist; rebinds
    /// the value pointer by key lookup.
    void rebind(const Key& key) {
      value_ = &map_->at(key);
      generation_ = map_->generation();
    }

   private:
    FlatMap* map_;
    Value* value_;
    std::uint64_t generation_;
  };

  /// Bumped by every structural mutation (insert, erase, clear). Equal
  /// generations guarantee no reference has been invalidated in between.
  std::uint64_t generation() const { return generation_; }

  iterator begin() { return items_.begin(); }
  iterator end() { return items_.end(); }
  const_iterator begin() const { return items_.begin(); }
  const_iterator end() const { return items_.end(); }
  const_iterator cbegin() const { return items_.cbegin(); }
  const_iterator cend() const { return items_.cend(); }

  bool empty() const { return items_.empty(); }
  std::size_t size() const { return items_.size(); }
  void clear() {
    if (!items_.empty()) ++generation_;
    items_.clear();
  }
  void reserve(std::size_t n) { items_.reserve(n); }

  iterator find(const Key& key) {
    const iterator it = lower_bound(key);
    return it != items_.end() && equal(it->first, key) ? it : items_.end();
  }
  const_iterator find(const Key& key) const {
    const const_iterator it = lower_bound(key);
    return it != items_.end() && equal(it->first, key) ? it : items_.end();
  }

  bool contains(const Key& key) const { return find(key) != items_.end(); }

  Value& at(const Key& key) {
    const iterator it = find(key);
    if (it == items_.end()) throw std::out_of_range("FlatMap::at: key not found");
    return it->second;
  }
  const Value& at(const Key& key) const {
    const const_iterator it = find(key);
    if (it == items_.end()) throw std::out_of_range("FlatMap::at: key not found");
    return it->second;
  }

  Value& operator[](const Key& key) { return try_emplace(key).first->second; }

  /// Inserts Value{args...} under `key` unless present. Returns (iterator,
  /// inserted) like std::map::try_emplace.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& key, Args&&... args) {
    iterator it = lower_bound(key);
    if (it != items_.end() && equal(it->first, key)) return {it, false};
    it = items_.emplace(it, std::piecewise_construct, std::forward_as_tuple(key),
                        std::forward_as_tuple(std::forward<Args>(args)...));
    ++generation_;
    return {it, true};
  }

  /// std::map::emplace equivalent for the (key, value) shape used in this
  /// repo: does nothing when the key is already present.
  template <typename K, typename V>
  std::pair<iterator, bool> emplace(K&& key, V&& value) {
    iterator it = lower_bound(key);
    if (it != items_.end() && equal(it->first, key)) return {it, false};
    it = items_.emplace(it, std::forward<K>(key), std::forward<V>(value));
    ++generation_;
    return {it, true};
  }

  std::size_t erase(const Key& key) {
    const iterator it = find(key);
    if (it == items_.end()) return 0;
    items_.erase(it);
    ++generation_;
    return 1;
  }

  iterator erase(const_iterator position) {
    ++generation_;
    return items_.erase(position);
  }

 private:
  iterator lower_bound(const Key& key) {
    return std::lower_bound(items_.begin(), items_.end(), key,
                            [this](const value_type& item, const Key& k) {
                              return compare_(item.first, k);
                            });
  }
  const_iterator lower_bound(const Key& key) const {
    return std::lower_bound(items_.begin(), items_.end(), key,
                            [this](const value_type& item, const Key& k) {
                              return compare_(item.first, k);
                            });
  }
  bool equal(const Key& a, const Key& b) const {
    return !compare_(a, b) && !compare_(b, a);
  }

  storage_type items_;
  std::uint64_t generation_ = 0;
  [[no_unique_address]] Compare compare_;
};

}  // namespace dhtidx
