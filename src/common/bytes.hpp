// Byte accounting helpers for the traffic and storage measurements of
// Figures 12 and 14 and the Section V-B storage comparison.
#pragma once

#include <cstdint>
#include <string>

namespace dhtidx {

/// Running byte counter with category-free add; cheap enough to keep one per
/// traffic class.
class ByteCounter {
 public:
  void add(std::uint64_t bytes) {
    total_ += bytes;
    ++events_;
  }
  void reset() {
    total_ = 0;
    events_ = 0;
  }
  std::uint64_t total() const { return total_; }
  std::uint64_t events() const { return events_; }
  double mean() const { return events_ == 0 ? 0.0 : static_cast<double>(total_) / static_cast<double>(events_); }

 private:
  std::uint64_t total_ = 0;
  std::uint64_t events_ = 0;
};

/// Human-readable size, e.g. "1.4 MB". Decimal units, two significant digits.
std::string format_bytes(std::uint64_t bytes);

}  // namespace dhtidx
