#include "common/fit.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dhtidx {

LineFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw InvariantError("fit_line: size mismatch");
  const std::size_t n = xs.size();
  if (n < 2) throw InvariantError("fit_line: need at least two points");

  double sum_x = 0.0, sum_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
  }
  const double mean_x = sum_x / static_cast<double>(n);
  const double mean_y = sum_y / static_cast<double>(n);

  double sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx == 0.0) throw InvariantError("fit_line: degenerate x values");

  LineFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy == 0.0 ? 1.0 : (sxy * sxy) / (sxx * syy);
  return fit;
}

PowerLawFit fit_power_law(const std::vector<double>& probabilities_by_rank) {
  std::vector<double> log_rank;
  std::vector<double> log_p;
  log_rank.reserve(probabilities_by_rank.size());
  log_p.reserve(probabilities_by_rank.size());
  for (std::size_t i = 0; i < probabilities_by_rank.size(); ++i) {
    const double p = probabilities_by_rank[i];
    if (p <= 0.0) continue;
    log_rank.push_back(std::log(static_cast<double>(i + 1)));
    log_p.push_back(std::log(p));
  }
  const LineFit line = fit_line(log_rank, log_p);
  PowerLawFit fit;
  fit.exponent = line.slope;
  fit.k = std::exp(line.intercept);
  fit.r_squared = line.r_squared;
  return fit;
}

}  // namespace dhtidx
