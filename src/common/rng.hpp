// Deterministic pseudo-random number generation.
//
// Every stochastic component in the library (corpus generation, workload
// sampling, simulation) draws from an explicitly seeded Rng so that whole
// experiments replay bit-identically. The engine is xoshiro256**, seeded via
// SplitMix64 as its authors recommend.
#pragma once

#include <cstdint>
#include <vector>

namespace dhtidx {

/// Deterministic 64-bit PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial.
  bool next_bool(double probability_true);

  /// Uniformly chosen index into a container of the given size (> 0).
  std::size_t next_index(std::size_t size);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const std::size_t j = next_index(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child generator (for giving each subsystem its
  /// own stream without coupling their consumption patterns).
  Rng fork();

 private:
  std::uint64_t s_[4];
};

/// Derives an independent per-item seed from (seed, index) via the SplitMix64
/// finalizer (the same mix sweep.cpp uses per cell). The streaming generators
/// seed a fresh Rng from mix_seed for every item, so item i's draws never
/// depend on how many items were generated before it — or by which worker.
inline std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t index) {
  std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace dhtidx
