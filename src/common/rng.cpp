#include "common/rng.hpp"

#include <cmath>

namespace dhtidx {

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // Avoid the all-zero state, which xoshiro cannot escape.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  // Lemire's nearly-divisionless bounded sampling with rejection to stay
  // exactly uniform.
  for (;;) {
    const std::uint64_t x = next_u64();
    const __uint128_t m = static_cast<__uint128_t>(x) * bound;
    const std::uint64_t low = static_cast<std::uint64_t>(m);
    if (low >= bound || low >= (0 - bound) % bound) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::next_in(std::int64_t lo, std::int64_t hi) {
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::next_bool(double probability_true) {
  return next_double() < probability_true;
}

std::size_t Rng::next_index(std::size_t size) {
  return static_cast<std::size_t>(next_below(size));
}

Rng Rng::fork() { return Rng{next_u64()}; }

}  // namespace dhtidx
