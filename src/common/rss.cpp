#include "common/rss.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace dhtidx {

std::uint64_t peak_rss_bytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  const std::uint64_t max_rss = static_cast<std::uint64_t>(usage.ru_maxrss);
#if defined(__APPLE__)
  // macOS reports ru_maxrss in bytes.
  return max_rss;
#else
  // Linux and the BSDs report ru_maxrss in kilobytes.
  return max_rss * 1024;
#endif
#else
  return 0;
#endif
}

}  // namespace dhtidx
