// 160-bit identifiers for the Chord-style identifier circle.
//
// Both node identifiers and data keys live in the same circular space
// [0, 2^160). Id supports the interval arithmetic Chord routing needs:
// clockwise membership tests on half-open / open / closed arcs, distance, and
// ordering. Ids are regular value types.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/sha1.hpp"

namespace dhtidx {

/// A point on the 160-bit identifier circle.
class Id {
 public:
  static constexpr std::size_t kBytes = 20;
  static constexpr std::size_t kBits = 160;

  /// Zero identifier.
  constexpr Id() : bytes_{} {}

  explicit constexpr Id(const std::array<std::uint8_t, kBytes>& bytes) : bytes_(bytes) {}

  /// SHA-1 of an arbitrary name (the canonical way keys/nodes get ids).
  static Id hash(std::string_view name) { return Id{Sha1::hash(name)}; }

  /// Parses a 40-character lowercase/uppercase hex string.
  /// Throws ParseError on malformed input.
  static Id from_hex(std::string_view hex);

  /// Builds an id whose value is the 64-bit integer `v` (high bits zero).
  /// Mostly useful for tests that need predictable ring positions.
  static Id from_uint64(std::uint64_t v);

  const std::array<std::uint8_t, kBytes>& bytes() const { return bytes_; }

  /// 40-character lowercase hex rendering.
  std::string to_hex() const;

  /// Short prefix (first 8 hex chars) for logs.
  std::string brief() const { return to_hex().substr(0, 8); }

  /// this + 2^power (mod 2^160); power must be < 160.
  Id add_power_of_two(unsigned power) const;

  /// this + 1 (mod 2^160).
  Id successor_value() const;

  /// Clockwise distance from this id to `other` (other - this mod 2^160),
  /// saturated into a double for diagnostics/metrics.
  double clockwise_distance(const Id& other) const;

  /// True when `x` lies on the open arc (a, b) travelling clockwise.
  /// When a == b the arc covers the whole circle minus {a}.
  static bool in_open(const Id& x, const Id& a, const Id& b);

  /// True when `x` lies on the half-open arc (a, b] travelling clockwise.
  /// When a == b the arc covers the whole circle.
  static bool in_half_open(const Id& x, const Id& a, const Id& b);

  auto operator<=>(const Id&) const = default;

 private:
  std::array<std::uint8_t, kBytes> bytes_;
};

/// Hash functor so Id can key unordered containers.
struct IdHasher {
  std::size_t operator()(const Id& id) const {
    // Ids are uniformly distributed SHA-1 outputs; the first 8 bytes are
    // already a high-quality hash.
    std::size_t h = 0;
    for (std::size_t i = 0; i < sizeof(std::size_t) && i < Id::kBytes; ++i) {
      h = (h << 8) | id.bytes()[i];
    }
    return h;
  }
};

}  // namespace dhtidx
