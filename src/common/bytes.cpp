#include "common/bytes.hpp"

#include <array>
#include <cstdio>

namespace dhtidx {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double value = static_cast<double>(bytes);
  std::size_t unit = 0;
  while (value >= 1000.0 && unit + 1 < std::size(kUnits)) {
    value /= 1000.0;
    ++unit;
  }
  std::array<char, 32> buf;
  if (unit == 0) {
    std::snprintf(buf.data(), buf.size(), "%llu B", static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf.data(), buf.size(), "%.2f %s", value, kUnits[unit]);
  }
  return std::string{buf.data()};
}

}  // namespace dhtidx
