#include "common/sha1.hpp"

#include <cstring>

namespace dhtidx {

namespace {

constexpr std::uint32_t rotl(std::uint32_t value, unsigned bits) {
  return (value << bits) | (value >> (32u - bits));
}

}  // namespace

Sha1::Sha1() : state_{0x67452301u, 0xEFCDAB89u, 0x98BADCFEu, 0x10325476u, 0xC3D2E1F0u} {}

void Sha1::update(const void* data, std::size_t len) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  total_bytes_ += len;
  while (len > 0) {
    const std::size_t take = std::min(len, buffer_.size() - buffered_);
    std::memcpy(buffer_.data() + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    len -= take;
    if (buffered_ == buffer_.size()) {
      process_block(buffer_.data());
      buffered_ = 0;
    }
  }
}

Sha1Digest Sha1::finish() {
  const std::uint64_t bit_length = total_bytes_ * 8;
  const std::uint8_t pad_one = 0x80;
  update(&pad_one, 1);
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) update(&zero, 1);
  std::array<std::uint8_t, 8> length_be;
  for (int i = 0; i < 8; ++i) {
    length_be[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(length_be.data(), length_be.size());

  Sha1Digest digest;
  for (std::size_t i = 0; i < 5; ++i) {
    digest[4 * i + 0] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

Sha1Digest Sha1::hash(std::string_view text) {
  Sha1 hasher;
  hasher.update(text);
  return hasher.finish();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int t = 0; t < 16; ++t) {
    w[t] = (static_cast<std::uint32_t>(block[t * 4]) << 24) |
           (static_cast<std::uint32_t>(block[t * 4 + 1]) << 16) |
           (static_cast<std::uint32_t>(block[t * 4 + 2]) << 8) |
           static_cast<std::uint32_t>(block[t * 4 + 3]);
  }
  for (int t = 16; t < 80; ++t) {
    w[t] = rotl(w[t - 3] ^ w[t - 8] ^ w[t - 14] ^ w[t - 16], 1);
  }

  std::uint32_t a = state_[0];
  std::uint32_t b = state_[1];
  std::uint32_t c = state_[2];
  std::uint32_t d = state_[3];
  std::uint32_t e = state_[4];

  for (int t = 0; t < 80; ++t) {
    std::uint32_t f;
    std::uint32_t k;
    if (t < 20) {
      f = (b & c) | (~b & d);
      k = 0x5A827999u;
    } else if (t < 40) {
      f = b ^ c ^ d;
      k = 0x6ED9EBA1u;
    } else if (t < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8F1BBCDCu;
    } else {
      f = b ^ c ^ d;
      k = 0xCA62C1D6u;
    }
    const std::uint32_t temp = rotl(a, 5) + f + e + k + w[t];
    e = d;
    d = c;
    c = rotl(b, 30);
    b = a;
    a = temp;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += c;
  state_[3] += d;
  state_[4] += e;
}

}  // namespace dhtidx
