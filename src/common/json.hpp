// Minimal one-line JSON emission.
//
// The bench sweeps and the invariant auditor both print single-line JSON
// summaries (the `BENCH_*.json` trajectory format). This header holds the
// tiny append-style builder they share; it is not a general JSON library --
// no nesting bookkeeping, the caller writes the braces.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace dhtidx::json {

/// Appends `text` with JSON string escaping (quotes, backslashes, control
/// characters).
inline void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

/// Appends `"name":value` to an object under construction, inserting the
/// separating comma unless the object was just opened. `quoted` selects
/// between string values (escaped) and raw literals (numbers, booleans,
/// nested arrays/objects the caller already serialized).
inline void append_field(std::string& out, const char* name, std::string_view value,
                         bool quoted = true) {
  if (out.back() != '{' && out.back() != '[') out.push_back(',');
  out.push_back('"');
  out += name;
  out += "\":";
  if (quoted) {
    out.push_back('"');
    append_escaped(out, value);
    out.push_back('"');
  } else {
    out += value;
  }
}

/// Shortest round-trippable rendering of a double.
inline std::string num(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", value);
  return buf;
}

}  // namespace dhtidx::json
