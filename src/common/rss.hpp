// Process memory high-water mark.
//
// The scale-frontier experiments budget bytes/node and bytes/article, which
// needs the real allocator footprint, not just the logical byte counters the
// index and store maintain. peak_rss_bytes() reports the process-wide
// resident-set high-water mark: monotone over the process lifetime, so a
// reading taken at the end of a run bounds everything the run ever held live
// at once (benches that compare cells run them smallest-first for this
// reason).
#pragma once

#include <cstdint>

namespace dhtidx {

/// Peak resident set size of the calling process in bytes, or 0 when the
/// platform provides no way to read it (the portable fallback: callers must
/// treat 0 as "unavailable", never as "no memory used").
std::uint64_t peak_rss_bytes();

}  // namespace dhtidx
