// Minimal, dependency-free SHA-1 (FIPS 180-1).
//
// Chord identifies nodes and keys by SHA-1 digests of their names; this
// implementation provides exactly that 160-bit hash. It is not intended as a
// cryptographic primitive for new designs -- it reproduces the identifier
// space of the DHT literature the paper builds on (Chord, Pastry).
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dhtidx {

/// A 160-bit SHA-1 digest, most significant byte first.
using Sha1Digest = std::array<std::uint8_t, 20>;

/// Incremental SHA-1 hasher.
///
/// Usage: construct, call update() any number of times, then finish().
/// finish() may be called only once; the object is spent afterwards.
class Sha1 {
 public:
  Sha1();

  /// Absorbs `data` into the hash state.
  void update(const void* data, std::size_t len);
  void update(std::string_view text) { update(text.data(), text.size()); }

  /// Completes padding and returns the digest.
  Sha1Digest finish();

  /// One-shot convenience over a string.
  static Sha1Digest hash(std::string_view text);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 5> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::uint64_t total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace dhtidx
