#include "common/id.hpp"

#include <cmath>

#include "common/error.hpp"

namespace dhtidx {

namespace {

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

Id Id::from_hex(std::string_view hex) {
  if (hex.size() != 2 * kBytes) {
    throw ParseError("Id hex string must be 40 characters, got " +
                     std::to_string(hex.size()));
  }
  std::array<std::uint8_t, kBytes> bytes{};
  for (std::size_t i = 0; i < kBytes; ++i) {
    const int hi = hex_value(hex[2 * i]);
    const int lo = hex_value(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) throw ParseError("Id hex string contains non-hex character");
    bytes[i] = static_cast<std::uint8_t>((hi << 4) | lo);
  }
  return Id{bytes};
}

Id Id::from_uint64(std::uint64_t v) {
  std::array<std::uint8_t, kBytes> bytes{};
  for (int i = 0; i < 8; ++i) {
    bytes[kBytes - 1 - static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(v >> (8 * i));
  }
  return Id{bytes};
}

std::string Id::to_hex() const {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(2 * kBytes);
  for (const std::uint8_t b : bytes_) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

Id Id::add_power_of_two(unsigned power) const {
  Id result = *this;
  // The bit `power` counts from the least significant end.
  std::size_t byte_index = kBytes - 1 - power / 8;
  unsigned carry = 1u << (power % 8);
  while (carry != 0) {
    const unsigned sum = result.bytes_[byte_index] + carry;
    result.bytes_[byte_index] = static_cast<std::uint8_t>(sum & 0xFF);
    carry = sum >> 8;
    if (byte_index == 0) break;  // overflow wraps around the circle
    --byte_index;
  }
  return result;
}

Id Id::successor_value() const { return add_power_of_two(0); }

double Id::clockwise_distance(const Id& other) const {
  // (other - this) mod 2^160, folded into a double.
  double value = 0.0;
  int borrow = 0;
  std::array<std::uint8_t, kBytes> diff{};
  for (std::size_t i = kBytes; i-- > 0;) {
    int d = static_cast<int>(other.bytes_[i]) - static_cast<int>(bytes_[i]) - borrow;
    if (d < 0) {
      d += 256;
      borrow = 1;
    } else {
      borrow = 0;
    }
    diff[i] = static_cast<std::uint8_t>(d);
  }
  // A leftover borrow means other < this; modular arithmetic already wrapped
  // correctly because we computed byte-wise mod-256 subtraction.
  for (const std::uint8_t b : diff) value = value * 256.0 + b;
  return value;
}

bool Id::in_open(const Id& x, const Id& a, const Id& b) {
  if (a == b) return x != a;  // whole circle minus the endpoint
  if (a < b) return a < x && x < b;
  return x > a || x < b;  // arc wraps past zero
}

bool Id::in_half_open(const Id& x, const Id& a, const Id& b) {
  if (a == b) return true;  // whole circle
  if (a < b) return a < x && x <= b;
  return x > a || x <= b;
}

}  // namespace dhtidx
