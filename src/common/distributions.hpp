// Samplers for the skewed distributions the paper's evaluation relies on.
//
// Section V-C fits article popularity to a power law whose complementary
// cumulative distribution function over ranks 1..N is
//     Fbar(i) = 1 - c * i^alpha          (paper: c = 0.063, alpha = 0.3)
// PowerLawPopularity implements exactly that family. ZipfSampler provides the
// classical Zipf(s) law used for author/conference sharing in the synthetic
// corpus, and DiscreteSampler handles arbitrary categorical distributions
// (e.g. the BibFinder query-structure frequencies of Figure 7).
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.hpp"

namespace dhtidx {

/// Categorical distribution over indices 0..n-1 with given weights.
class DiscreteSampler {
 public:
  /// Weights need not be normalized; they must be non-negative with a
  /// positive sum. Throws InvariantError otherwise.
  explicit DiscreteSampler(const std::vector<double>& weights);

  std::size_t sample(Rng& rng) const;

  /// Probability assigned to index i (normalized).
  double probability(std::size_t i) const;

  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;  // normalized, strictly increasing, last == 1
};

/// Zipf distribution over ranks 1..n: P(i) proportional to 1 / i^s.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const;

  double probability(std::size_t rank) const;

  std::size_t size() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

/// The paper's fitted power-law popularity over article ranks 1..n:
/// CDF F(i) = c * i^alpha, clamped so F(n) == 1 (the paper adapts the
/// parameters "to match the finite population of articles").
class PowerLawPopularity {
 public:
  /// Defaults are the paper's fit: c = 0.063, alpha = 0.3, n = 10000.
  explicit PowerLawPopularity(std::size_t n = 10000, double c = 0.063, double alpha = 0.3);

  /// Returns a rank in [1, n], rank 1 being the most popular article.
  std::size_t sample(Rng& rng) const;

  /// F(i): probability that a request targets rank <= i.
  double cdf(std::size_t rank) const;

  /// Fbar(i) = 1 - F(i), the curve plotted in Figure 10.
  double ccdf(std::size_t rank) const { return 1.0 - cdf(rank); }

  /// Probability mass of a single rank.
  double probability(std::size_t rank) const;

  std::size_t size() const { return n_; }
  double c() const { return c_; }
  double alpha() const { return alpha_; }

 private:
  std::size_t n_;
  double c_;
  double alpha_;
  double normalizer_;  // F(n) before clamping; divides cdf so F(n) == 1
};

}  // namespace dhtidx
