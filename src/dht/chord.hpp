// Chord distributed hash table (Stoica et al., SIGCOMM 2001).
//
// A faithful single-process implementation of the protocol the paper cites as
// its reference substrate: 160-bit identifier circle, finger tables,
// successor lists, periodic stabilization, and iterative key resolution.
// Inter-node calls go through ChordNetwork::rpc, which accounts routing
// traffic and applies failure injection, so protocol behaviour under churn is
// observable and testable.
//
// The simulation in src/sim uses the cheaper Ring view instead (the paper's
// Section V-E argues substrate choice does not affect indexing metrics);
// ChordNetwork exists so the full stack can run end-to-end and so the
// substrate-independence claim can be validated (bench/ablation_substrate).
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "dht/dht.hpp"
#include "net/failure.hpp"
#include "net/latency.hpp"
#include "net/stats.hpp"

namespace dhtidx::dht {

class ChordNetwork;

/// One Chord peer. Created and owned by a ChordNetwork.
class ChordNode {
 public:
  static constexpr std::size_t kFingerCount = Id::kBits;
  static constexpr std::size_t kSuccessorListLength = 8;

  ChordNode(Id id, ChordNetwork* network) : id_(id), network_(network) {}

  const Id& id() const { return id_; }
  bool alive() const { return alive_; }

  /// Current first live successor. Falls back through the successor list,
  /// pinging entries; repairs the list in passing.
  Id successor();

  const std::vector<Id>& successor_list() const { return successors_; }
  const std::optional<Id>& predecessor() const { return predecessor_; }
  std::optional<Id> finger(std::size_t i) const { return fingers_.at(i); }

  /// Resolves the node responsible for `key`, counting overlay hops into
  /// `hops`. May route through other nodes via RPC.
  Id find_successor(const Id& key, int& hops);

  /// The finger (or successor-list entry) closest to but preceding `key`.
  Id closest_preceding(const Id& key) const;

  // --- protocol maintenance (driven by ChordNetwork) ---

  /// Bootstraps this node as the first member of the ring.
  void create();

  /// Joins via an existing member.
  void join(const Id& bootstrap);

  /// Verifies the immediate successor and notifies it (Chord's stabilize).
  void stabilize();

  /// Candidate predecessor notification from another node.
  void notify(const Id& candidate);

  /// Clears the predecessor if it stopped responding.
  void check_predecessor();

  /// Refreshes `count` finger-table entries starting from an internal cursor.
  void fix_fingers(std::size_t count);

  /// Drops every reference to a node observed dead.
  void forget(const Id& node);

  /// Tells neighbours about this node's departure (graceful leave).
  void leave_gracefully();

 private:
  friend class ChordNetwork;

  void set_successor_front(const Id& node);
  void adopt_successor_list(const Id& head, const std::vector<Id>& rest);

  Id id_;
  ChordNetwork* network_;
  bool alive_ = true;
  std::optional<Id> predecessor_;
  std::vector<Id> successors_;  // front = immediate successor
  std::array<std::optional<Id>, kFingerCount> fingers_{};
  std::size_t next_finger_ = 0;
};

/// A complete simulated Chord overlay.
class ChordNetwork : public Dht {
 public:
  explicit ChordNetwork(std::uint64_t seed = 0xc402d);

  /// Adds a node with the given name (id = SHA-1(name)) and joins it through
  /// a random existing member. Returns its id. The ring is usable after
  /// stabilization; call stabilize_until_converged() or stabilize rounds.
  Id add_node(const std::string& name);

  /// Adds a node with an explicit id (tests use predictable positions).
  Id add_node_with_id(const Id& id);

  /// Crashes a node without warning. Its state stays around (dead) so RPCs
  /// to it fail realistically until neighbours repair.
  void crash(const Id& id);

  /// Graceful departure: the node hands its neighbours over before leaving.
  void leave(const Id& id);

  /// Runs one maintenance round on every live node (stabilize, notify,
  /// check_predecessor, and `fingers_per_round` finger refreshes each).
  void stabilize_round(std::size_t fingers_per_round = 16);

  /// Runs maintenance rounds until the ring is correct w.r.t. the live
  /// membership or `max_rounds` is hit. Returns the number of rounds used,
  /// or -1 when it did not converge.
  int stabilize_until_converged(int max_rounds = 256);

  /// True when every live node's successor pointer matches the sorted live
  /// membership (the Chord correctness invariant).
  bool ring_correct() const;

  // Dht interface: resolves from a random live node.
  LookupResult lookup(const Id& key) override;

  /// The responsible node followed by live entries of its successor list.
  std::vector<Id> replica_set(const Id& key, std::size_t count) override;

  /// Resolves starting at a specific node.
  LookupResult lookup_from(const Id& origin, const Id& key);

  std::vector<Id> node_ids() const override;
  std::size_t size() const override;

  ChordNode& node(const Id& id);
  const ChordNode& node(const Id& id) const;
  bool is_alive(const Id& id) const;

  net::TrafficStats& routing_stats() { return routing_stats_; }
  net::LatencyModel& latency() { return latency_; }
  net::FailureInjector& failures() { return failures_; }

  /// Invokes `fn` on the target node as an RPC: checks delivery, records
  /// `payload_bytes` + envelope into routing stats, samples one hop of
  /// latency. Throws net::RpcError when the target is unreachable.
  template <typename F>
  auto rpc(const Id& target, std::uint64_t payload_bytes, F&& fn) {
    failures_.check_delivery(target);
    const auto it = nodes_.find(target);
    if (it == nodes_.end() || !it->second->alive()) {
      throw net::RpcError("node " + target.brief() + " is gone");
    }
    routing_stats_.record(payload_bytes + net::kMessageOverheadBytes);
    latency_.sample_hop_ms();
    return fn(*it->second);
  }

  /// Liveness probe. Lossy links would otherwise make healthy nodes look
  /// dead, so the probe retries before giving up (each attempt counts as a
  /// routing message).
  bool ping(const Id& target, int attempts = 3);

 private:
  // dhtidx-lint: allow(hot-path-map) "substrate membership (includes dead nodes), mutated only at join/leave; sorted iteration order is part of deterministic node enumeration"
  std::map<Id, std::unique_ptr<ChordNode>> nodes_;
  net::TrafficStats routing_stats_;
  net::LatencyModel latency_;
  net::FailureInjector failures_;
  Rng rng_;
};

}  // namespace dhtidx::dht
