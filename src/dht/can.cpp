#include "dht/can.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace dhtidx::dht {

namespace {

/// One-dimensional torus distance between coordinates in [0, 1).
double torus_delta(double a, double b) {
  const double d = std::fabs(a - b);
  return std::min(d, 1.0 - d);
}

/// Distance from interval [lo, hi) to coordinate c on the unit torus.
double interval_distance(double lo, double hi, double c) {
  if (c >= lo && c < hi) return 0.0;
  return std::min(torus_delta(c, lo), torus_delta(c, hi));
}

/// Do [alo, ahi) and [blo, bhi) overlap in extent (not just touch)?
bool extent_overlaps(double alo, double ahi, double blo, double bhi) {
  return std::max(alo, blo) < std::min(ahi, bhi);
}

/// Do the intervals abut on the torus (one's end is the other's start,
/// including the 0/1 wrap)?
bool abuts(double alo, double ahi, double blo, double bhi) {
  const auto close = [](double a, double b) { return std::fabs(a - b) < 1e-12; };
  if (close(ahi, blo) || close(bhi, alo)) return true;
  // Wrap: one touches 1.0 while the other starts at 0.0.
  if (close(ahi, 1.0) && close(blo, 0.0)) return true;
  if (close(bhi, 1.0) && close(alo, 0.0)) return true;
  return false;
}

}  // namespace

double CanZone::distance_to(const CanPoint& p) const {
  const double dx = interval_distance(lo.x, hi.x, p.x);
  const double dy = interval_distance(lo.y, hi.y, p.y);
  return std::sqrt(dx * dx + dy * dy);
}

bool CanZone::adjacent(const CanZone& a, const CanZone& b) {
  // Vertical borders: x-intervals abut, y-extents overlap.
  if (abuts(a.lo.x, a.hi.x, b.lo.x, b.hi.x) &&
      extent_overlaps(a.lo.y, a.hi.y, b.lo.y, b.hi.y)) {
    return true;
  }
  // Horizontal borders.
  if (abuts(a.lo.y, a.hi.y, b.lo.y, b.hi.y) &&
      extent_overlaps(a.lo.x, a.hi.x, b.lo.x, b.hi.x)) {
    return true;
  }
  return false;
}

CanNetwork::CanNetwork(std::uint64_t seed) : rng_(seed) {}

CanPoint CanNetwork::point_of(const Id& key) {
  const auto& bytes = key.bytes();
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
  for (int i = 0; i < 8; ++i) {
    hi = (hi << 8) | bytes[static_cast<std::size_t>(i)];
    lo = (lo << 8) | bytes[static_cast<std::size_t>(i) + 8];
  }
  constexpr double kScale = 0x1.0p-64;
  return CanPoint{static_cast<double>(hi) * kScale, static_cast<double>(lo) * kScale};
}

Id CanNetwork::add_node(const std::string& name) {
  const Id id = Id::hash(name);
  if (nodes_.contains(id)) throw InvariantError("node id already present: " + id.brief());
  if (size() == 0) {
    nodes_[id].zones.push_back(CanZone{{0.0, 0.0}, {1.0, 1.0}});
    return id;
  }
  // Pick a random point, find its owner, split the owning zone along its
  // longer side; the new node takes the half containing the point.
  const CanPoint p{rng_.next_double(), rng_.next_double()};
  const Id owner = owner_of(p);
  Node& owner_node = nodes_.at(owner);
  const auto zone_it =
      std::find_if(owner_node.zones.begin(), owner_node.zones.end(),
                   [&](const CanZone& z) { return z.contains(p); });
  CanZone zone = *zone_it;
  owner_node.zones.erase(zone_it);

  CanZone kept = zone;
  CanZone given = zone;
  if (zone.width() >= zone.height()) {
    const double mid = (zone.lo.x + zone.hi.x) / 2.0;
    kept.hi.x = mid;
    given.lo.x = mid;
  } else {
    const double mid = (zone.lo.y + zone.hi.y) / 2.0;
    kept.hi.y = mid;
    given.lo.y = mid;
  }
  if (kept.contains(p)) std::swap(kept, given);
  owner_node.zones.push_back(kept);
  nodes_[id].zones.push_back(given);
  // A join costs a routed lookup plus the zone-transfer handshake.
  routing_stats_.record(2 * Id::kBytes + net::kMessageOverheadBytes);
  return id;
}

void CanNetwork::crash(const Id& id) {
  Node& victim = nodes_.at(id);
  if (!victim.alive) return;
  victim.alive = false;
  std::vector<CanZone> orphaned = std::move(victim.zones);
  victim.zones.clear();
  // CAN takeover: each orphaned zone goes to the bordering live neighbour
  // with the smallest total volume (it can merge or hold multiple zones).
  for (CanZone& zone : orphaned) {
    Id best{};
    double best_volume = 2.0;
    bool found = false;
    for (const auto& [nid, node] : nodes_) {
      if (!node.alive) continue;
      const bool borders = std::any_of(node.zones.begin(), node.zones.end(),
                                       [&](const CanZone& z) {
                                         return CanZone::adjacent(z, zone);
                                       });
      if (!borders) continue;
      double volume = 0.0;
      for (const CanZone& z : node.zones) volume += z.volume();
      if (!found || volume < best_volume) {
        best = nid;
        best_volume = volume;
        found = true;
      }
    }
    if (!found) throw InvariantError("CAN zone has no live neighbour to take over");
    nodes_.at(best).zones.push_back(zone);
    routing_stats_.record(2 * Id::kBytes + net::kMessageOverheadBytes);
  }
}

Id CanNetwork::owner_of(const CanPoint& p) const {
  for (const auto& [nid, node] : nodes_) {
    if (!node.alive) continue;
    for (const CanZone& zone : node.zones) {
      if (zone.contains(p)) return nid;
    }
  }
  throw NotFoundError("no zone contains the point (empty network?)");
}

LookupResult CanNetwork::lookup(const Id& key) {
  std::vector<Id> live = node_ids();
  if (live.empty()) throw NotFoundError("CAN network has no live nodes");
  return lookup_from(live[rng_.next_index(live.size())], key);
}

LookupResult CanNetwork::lookup_from(const Id& origin, const Id& key) {
  const CanPoint target = point_of(key);
  Id current = origin;
  int hops = 0;
  const int max_hops = static_cast<int>(8 * std::sqrt(static_cast<double>(size())) + 16);
  for (; hops <= max_hops; ++hops) {
    const Node& node = nodes_.at(current);
    if (!node.alive) throw NotFoundError("routing reached a dead node");
    const bool here = std::any_of(node.zones.begin(), node.zones.end(),
                                  [&](const CanZone& z) { return z.contains(target); });
    if (here) return LookupResult{current, hops};
    // Greedy: forward to the bordering neighbour whose zones are closest to
    // the target point.
    Id best{};
    double best_distance = 10.0;
    bool found = false;
    for (const auto& [nid, other] : nodes_) {
      if (nid == current || !other.alive) continue;
      bool borders = false;
      for (const CanZone& mine : node.zones) {
        for (const CanZone& theirs : other.zones) {
          if (CanZone::adjacent(mine, theirs)) {
            borders = true;
            break;
          }
        }
        if (borders) break;
      }
      if (!borders) continue;
      double distance = 2.0;
      for (const CanZone& z : other.zones) {
        distance = std::min(distance, z.distance_to(target));
      }
      if (!found || distance < best_distance) {
        best = nid;
        best_distance = distance;
        found = true;
      }
    }
    if (!found) throw NotFoundError("CAN routing found no neighbour to forward to");
    routing_stats_.record(Id::kBytes + net::kMessageOverheadBytes);
    current = best;
  }
  throw NotFoundError("CAN routing exceeded the hop budget");
}

std::vector<Id> CanNetwork::node_ids() const {
  std::vector<Id> live;
  for (const auto& [nid, node] : nodes_) {
    if (node.alive) live.push_back(nid);
  }
  return live;
}

std::size_t CanNetwork::size() const {
  std::size_t count = 0;
  for (const auto& [nid, node] : nodes_) {
    if (node.alive) ++count;
  }
  return count;
}

const std::vector<CanZone>& CanNetwork::zones_of(const Id& id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw NotFoundError("no such node: " + id.brief());
  return it->second.zones;
}

std::vector<Id> CanNetwork::neighbours_of(const Id& id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw NotFoundError("no such node: " + id.brief());
  std::vector<Id> result;
  for (const auto& [nid, other] : nodes_) {
    if (nid == id || !other.alive) continue;
    bool borders = false;
    for (const CanZone& mine : it->second.zones) {
      for (const CanZone& theirs : other.zones) {
        if (CanZone::adjacent(mine, theirs)) {
          borders = true;
          break;
        }
      }
      if (borders) break;
    }
    if (borders) result.push_back(nid);
  }
  return result;
}

bool CanNetwork::zones_partition_space(double tolerance) const {
  double total = 0.0;
  std::vector<const CanZone*> zones;
  for (const auto& [nid, node] : nodes_) {
    if (!node.alive) continue;
    for (const CanZone& z : node.zones) {
      total += z.volume();
      zones.push_back(&z);
    }
  }
  if (std::fabs(total - 1.0) > tolerance) return false;
  for (std::size_t i = 0; i < zones.size(); ++i) {
    for (std::size_t j = i + 1; j < zones.size(); ++j) {
      const CanZone& a = *zones[i];
      const CanZone& b = *zones[j];
      const bool overlap = extent_overlaps(a.lo.x, a.hi.x, b.lo.x, b.hi.x) &&
                           extent_overlaps(a.lo.y, a.hi.y, b.lo.y, b.hi.y);
      if (overlap) return false;
    }
  }
  return true;
}

}  // namespace dhtidx::dht
