// Instant consistent-hashing ring.
//
// Maps a key to its clockwise successor node in O(log n) with no routing
// messages. The indexing evaluation uses this substrate: the paper argues
// (Section V-E) that the number of nodes and the routing algorithm do not
// affect indexing effectiveness, only lookup latency. Ring also serves as the
// correctness oracle for the Chord implementation in tests.
#pragma once

#include <string>
#include <vector>

#include "dht/dht.hpp"

namespace dhtidx::dht {

class Ring : public Dht {
 public:
  Ring() = default;

  /// Convenience: a ring of `n` nodes named "<prefix><i>".
  static Ring with_nodes(std::size_t n, const std::string& prefix = "node-");

  /// Adds a node. Returns false when the id is already present.
  bool add(const Id& node);

  /// Removes a node. Returns false when absent.
  bool remove(const Id& node);

  bool contains(const Id& node) const;

  /// The node responsible for `key`: its clockwise successor on the circle.
  /// Throws NotFoundError when the ring is empty.
  Id successor(const Id& key) const;

  LookupResult lookup(const Id& key) override;

  /// The responsible node and its clockwise successors (distinct, at most
  /// the whole ring).
  std::vector<Id> replica_set(const Id& key, std::size_t count) override;

  std::vector<Id> node_ids() const override { return nodes_; }
  std::size_t size() const override { return nodes_.size(); }

 private:
  std::vector<Id> nodes_;  // sorted
};

}  // namespace dhtidx::dht
