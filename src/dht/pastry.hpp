// Pastry substrate (Rowstron & Druschel, Middleware 2001) -- the third DHT
// the paper lists, and the basis of the Pastry/PAST storage system it cites
// as an example substrate (Section III-A).
//
// Identifiers are 160-bit numbers read as 40 hexadecimal digits. Each node
// keeps
//   - a leaf set: the L/2 numerically closest nodes on either side,
//   - a routing table: row r holds nodes sharing an r-digit prefix with this
//     node, one column per value of the (r+1)-th digit.
// A key is routed to the node numerically closest to it: forward within the
// leaf set when the key falls inside it, otherwise to the routing-table
// entry matching one more digit, otherwise to any known node numerically
// closer with at least the same shared prefix.
//
// Simulation-grade like ChordNetwork/CanNetwork: single process, RPCs with
// traffic accounting and failure injection, explicit repair rounds.
#pragma once

#include <array>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "dht/dht.hpp"
#include "net/failure.hpp"
#include "net/stats.hpp"

namespace dhtidx::dht {

class PastryNetwork;

/// Number of hex digits in an id.
inline constexpr std::size_t kPastryDigits = 2 * Id::kBytes;

/// The i-th hex digit of an id (0 = most significant).
int pastry_digit(const Id& id, std::size_t i);

/// Length of the common hex-digit prefix of two ids.
std::size_t pastry_prefix(const Id& a, const Id& b);

/// True when `a` is numerically closer to `key` than `b` is (minimum of the
/// two directions around the circle; exact byte arithmetic, ties broken by
/// smaller id).
bool pastry_closer(const Id& a, const Id& b, const Id& key);

/// One Pastry peer.
class PastryNode {
 public:
  static constexpr std::size_t kLeafHalf = 4;  ///< leaf-set entries per side
  static constexpr std::size_t kColumns = 16;

  PastryNode(Id id, PastryNetwork* network) : id_(id), network_(network) {}

  const Id& id() const { return id_; }
  bool alive() const { return alive_; }

  /// The node responsible for `key` (numerically closest), routing through
  /// the overlay and counting hops.
  Id route(const Id& key, int& hops);

  /// All nodes this one knows (leaf set + routing table), for state exchange.
  std::vector<Id> known_nodes() const;

  /// Incorporates a node into the leaf set / routing table as appropriate.
  void learn(const Id& node);

  /// Drops a node from all state.
  void forget(const Id& node);

  /// Prunes dead entries and refills the leaf set from neighbours' state.
  void repair();

  const std::vector<Id>& smaller_leaves() const { return smaller_; }
  const std::vector<Id>& larger_leaves() const { return larger_; }
  std::optional<Id> table_entry(std::size_t row, std::size_t column) const;

 private:
  friend class PastryNetwork;

  /// True when `key` lies within the span of the leaf set (or the set is
  /// small enough to cover the whole circle).
  bool key_in_leaf_range(const Id& key) const;

  /// Numerically closest to `key` among this node and its leaves.
  Id closest_known(const Id& key) const;

  Id id_;
  PastryNetwork* network_;
  bool alive_ = true;
  std::vector<Id> smaller_;  // numerically below id_, nearest first
  std::vector<Id> larger_;   // numerically above id_, nearest first
  std::array<std::array<std::optional<Id>, kColumns>, kPastryDigits> table_{};
};

/// A complete simulated Pastry overlay.
class PastryNetwork : public Dht {
 public:
  explicit PastryNetwork(std::uint64_t seed = 0x9a57);

  /// Adds a node (id = SHA-1(name)), joining through a random live member.
  Id add_node(const std::string& name);

  /// Crashes a node without warning; run repair_round() to heal.
  void crash(const Id& id);

  /// One repair round on every live node.
  void repair_round();

  /// True when every live node's leaf set matches the numerically sorted
  /// membership.
  bool leaf_sets_correct() const;

  // Dht interface: routes from a random live node. Responsibility is the
  // numerically closest node.
  LookupResult lookup(const Id& key) override;
  LookupResult lookup_from(const Id& origin, const Id& key);
  std::vector<Id> node_ids() const override;
  std::size_t size() const override;

  PastryNode& node(const Id& id);
  bool is_alive(const Id& id) const;
  net::TrafficStats& routing_stats() { return routing_stats_; }
  net::FailureInjector& failures() { return failures_; }

  /// RPC helper (traffic accounting + failure injection).
  template <typename F>
  auto rpc(const Id& target, std::uint64_t payload_bytes, F&& fn) {
    failures_.check_delivery(target);
    const auto it = nodes_.find(target);
    if (it == nodes_.end() || !it->second->alive()) {
      throw net::RpcError("node " + target.brief() + " is gone");
    }
    routing_stats_.record(payload_bytes + net::kMessageOverheadBytes);
    return fn(*it->second);
  }

  bool ping(const Id& target);

 private:
  // dhtidx-lint: allow(hot-path-map) "substrate membership, mutated only at join/leave; sorted iteration order is part of deterministic node enumeration"
  std::map<Id, std::unique_ptr<PastryNode>> nodes_;
  net::TrafficStats routing_stats_;
  net::FailureInjector failures_;
  Rng rng_;
};

}  // namespace dhtidx::dht
