#include "dht/chord.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dhtidx::dht {

namespace {

// Payload size estimates (bytes) for the protocol messages; only used for
// routing-traffic accounting.
constexpr std::uint64_t kIdBytes = Id::kBytes;
constexpr std::uint64_t kFindPayload = kIdBytes;
constexpr std::uint64_t kListPayload = kIdBytes * ChordNode::kSuccessorListLength;

}  // namespace

// ---------------------------------------------------------------- ChordNode

void ChordNode::create() {
  predecessor_.reset();
  successors_.assign(1, id_);
}

void ChordNode::join(const Id& bootstrap) {
  predecessor_.reset();
  int hops = 0;
  const Id succ = network_->rpc(bootstrap, kFindPayload, [&](ChordNode& n) {
    return n.find_successor(id_, hops);
  });
  successors_.assign(1, succ);
}

Id ChordNode::successor() {
  while (!successors_.empty()) {
    const Id head = successors_.front();
    if (head == id_ || network_->ping(head)) return head;
    forget(head);
  }
  // Lost the whole list: fall back to self; stabilization will re-merge when
  // another node notifies us.
  successors_.assign(1, id_);
  return id_;
}

void ChordNode::set_successor_front(const Id& node) {
  const auto it = std::find(successors_.begin(), successors_.end(), node);
  if (it != successors_.end()) successors_.erase(it);
  successors_.insert(successors_.begin(), node);
  if (successors_.size() > kSuccessorListLength) successors_.resize(kSuccessorListLength);
}

void ChordNode::adopt_successor_list(const Id& head, const std::vector<Id>& rest) {
  successors_.clear();
  successors_.push_back(head);
  for (const Id& id : rest) {
    if (id == id_) continue;  // don't list ourselves behind our successor
    if (std::find(successors_.begin(), successors_.end(), id) != successors_.end()) continue;
    successors_.push_back(id);
    if (successors_.size() == kSuccessorListLength) break;
  }
}

Id ChordNode::closest_preceding(const Id& key) const {
  // Scan fingers from the farthest down, then the successor list; the
  // standard Chord routing choice.
  for (std::size_t i = kFingerCount; i-- > 0;) {
    const std::optional<Id>& f = fingers_[i];
    if (f && Id::in_open(*f, id_, key)) return *f;
  }
  for (std::size_t i = successors_.size(); i-- > 0;) {
    if (Id::in_open(successors_[i], id_, key)) return successors_[i];
  }
  return id_;
}

Id ChordNode::find_successor(const Id& key, int& hops) {
  for (int attempt = 0; attempt < 32; ++attempt) {
    const Id succ = successor();
    if (Id::in_half_open(key, id_, succ)) return succ;
    const Id next = closest_preceding(key);
    if (next == id_) return succ;  // no better hop known
    try {
      ++hops;
      return network_->rpc(next, kFindPayload,
                           [&](ChordNode& n) { return n.find_successor(key, hops); });
    } catch (const net::RpcError&) {
      forget(next);  // stale finger/successor; retry with the next best
    }
  }
  throw net::RpcError("find_successor exhausted retries at node " + id_.brief());
}

void ChordNode::stabilize() {
  for (int attempt = 0; attempt < static_cast<int>(kSuccessorListLength) + 1; ++attempt) {
    const Id succ = successor();
    if (succ == id_) {
      // Alone (or temporarily isolated): nothing to verify.
      if (predecessor_ && *predecessor_ != id_) {
        // A predecessor exists, so we are not actually alone; re-link to it.
        set_successor_front(*predecessor_);
        continue;
      }
      return;
    }
    try {
      const std::optional<Id> x = network_->rpc(
          succ, kIdBytes, [](ChordNode& n) { return n.predecessor(); });
      if (x && *x != id_ && Id::in_open(*x, id_, succ) && network_->ping(*x)) {
        set_successor_front(*x);
        continue;  // re-verify against the closer successor
      }
      const auto list = network_->rpc(succ, kListPayload, [this](ChordNode& n) {
        n.notify(id_);
        return n.successor_list();
      });
      adopt_successor_list(succ, list);
      return;
    } catch (const net::RpcError&) {
      forget(succ);
    }
  }
}

void ChordNode::notify(const Id& candidate) {
  if (candidate == id_) return;
  if (!predecessor_ || Id::in_open(candidate, *predecessor_, id_)) {
    predecessor_ = candidate;
  }
}

void ChordNode::check_predecessor() {
  if (predecessor_ && *predecessor_ != id_ && !network_->ping(*predecessor_)) {
    predecessor_.reset();
  }
}

void ChordNode::fix_fingers(std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t i = next_finger_;
    next_finger_ = (next_finger_ + 1) % kFingerCount;
    const Id start = id_.add_power_of_two(static_cast<unsigned>(i));
    try {
      int hops = 0;
      fingers_[i] = find_successor(start, hops);
    } catch (const net::RpcError&) {
      fingers_[i].reset();
    }
  }
}

void ChordNode::forget(const Id& node) {
  successors_.erase(std::remove(successors_.begin(), successors_.end(), node),
                    successors_.end());
  for (auto& finger : fingers_) {
    if (finger && *finger == node) finger.reset();
  }
  if (predecessor_ && *predecessor_ == node) predecessor_.reset();
}

void ChordNode::leave_gracefully() {
  const Id succ = successor();
  if (succ != id_ && predecessor_ && *predecessor_ != id_) {
    const Id pred = *predecessor_;
    try {
      network_->rpc(succ, kIdBytes, [&](ChordNode& n) {
        if (n.predecessor_ && *n.predecessor_ == id_) n.predecessor_ = pred;
        return 0;
      });
    } catch (const net::RpcError&) {
    }
    try {
      network_->rpc(pred, kIdBytes, [&](ChordNode& n) {
        n.forget(id_);
        n.set_successor_front(succ);
        return 0;
      });
    } catch (const net::RpcError&) {
    }
  }
  alive_ = false;
}

// ------------------------------------------------------------- ChordNetwork

ChordNetwork::ChordNetwork(std::uint64_t seed)
    : latency_(net::LatencyDistribution::kExponential, 50.0, seed ^ 0x17),
      failures_(seed ^ 0x31),
      rng_(seed) {}

Id ChordNetwork::add_node(const std::string& name) {
  return add_node_with_id(Id::hash(name));
}

Id ChordNetwork::add_node_with_id(const Id& id) {
  if (nodes_.contains(id)) throw InvariantError("node id already present: " + id.brief());
  // Pick a bootstrap before inserting, so we never bootstrap off ourselves.
  std::vector<Id> live;
  for (const auto& [nid, node] : nodes_) {
    if (node->alive()) live.push_back(nid);
  }
  auto node = std::make_unique<ChordNode>(id, this);
  ChordNode* raw = node.get();
  nodes_.emplace(id, std::move(node));
  if (live.empty()) {
    raw->create();
  } else {
    try {
      raw->join(live[rng_.next_index(live.size())]);
    } catch (const net::RpcError&) {
      // Join failed (e.g. lost messages): don't leave a zombie behind; the
      // caller may retry.
      nodes_.erase(id);
      throw;
    }
  }
  return id;
}

void ChordNetwork::crash(const Id& id) {
  auto& n = node(id);
  n.alive_ = false;
  failures_.crash(id);
}

void ChordNetwork::leave(const Id& id) {
  node(id).leave_gracefully();
}

void ChordNetwork::stabilize_round(std::size_t fingers_per_round) {
  std::vector<Id> live;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) live.push_back(nid);
  }
  rng_.shuffle(live);
  for (const Id& nid : live) {
    ChordNode& n = node(nid);
    if (!n.alive()) continue;
    n.check_predecessor();
    n.stabilize();
    n.fix_fingers(fingers_per_round);
    // Isolation recovery: a node that lost its whole successor list (e.g.
    // under message loss) falls back to a self-ring and would never
    // reintegrate on its own. Deployed Chord nodes keep bootstrap addresses
    // and re-join; model that here.
    if (live.size() > 1 && n.successor() == nid) {
      for (int attempt = 0; attempt < 3; ++attempt) {
        const Id& bootstrap = live[rng_.next_index(live.size())];
        if (bootstrap == nid) continue;
        try {
          n.join(bootstrap);
          break;
        } catch (const net::RpcError&) {
        }
      }
    }
  }
}

bool ChordNetwork::ring_correct() const {
  std::vector<Id> live;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) live.push_back(nid);
  }
  if (live.empty()) return true;
  std::sort(live.begin(), live.end());
  for (std::size_t i = 0; i < live.size(); ++i) {
    const Id& expected_succ = live[(i + 1) % live.size()];
    const auto& n = nodes_.at(live[i]);
    if (n->successor_list().empty() || n->successor_list().front() != expected_succ) {
      return false;
    }
  }
  return true;
}

int ChordNetwork::stabilize_until_converged(int max_rounds) {
  for (int round = 0; round < max_rounds; ++round) {
    if (ring_correct()) return round;
    stabilize_round();
  }
  return ring_correct() ? max_rounds : -1;
}

LookupResult ChordNetwork::lookup(const Id& key) {
  std::vector<Id> live;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) live.push_back(nid);
  }
  if (live.empty()) throw NotFoundError("chord network has no live nodes");
  return lookup_from(live[rng_.next_index(live.size())], key);
}

std::vector<Id> ChordNetwork::replica_set(const Id& key, std::size_t count) {
  const Id primary = lookup(key).node;
  std::vector<Id> replicas{primary};
  for (const Id& succ : node(primary).successor_list()) {
    if (replicas.size() >= count) break;
    if (succ == primary || !is_alive(succ)) continue;
    if (std::find(replicas.begin(), replicas.end(), succ) == replicas.end()) {
      replicas.push_back(succ);
    }
  }
  return replicas;
}

LookupResult ChordNetwork::lookup_from(const Id& origin, const Id& key) {
  ChordNode& n = node(origin);
  if (!n.alive()) throw net::RpcError("origin node " + origin.brief() + " is down");
  int hops = 0;
  const Id responsible = n.find_successor(key, hops);
  return LookupResult{responsible, hops};
}

std::vector<Id> ChordNetwork::node_ids() const {
  std::vector<Id> live;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) live.push_back(nid);
  }
  return live;
}

std::size_t ChordNetwork::size() const {
  std::size_t count = 0;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) ++count;
  }
  return count;
}

ChordNode& ChordNetwork::node(const Id& id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw NotFoundError("no such node: " + id.brief());
  return *it->second;
}

const ChordNode& ChordNetwork::node(const Id& id) const {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw NotFoundError("no such node: " + id.brief());
  return *it->second;
}

bool ChordNetwork::is_alive(const Id& id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second->alive();
}

bool ChordNetwork::ping(const Id& target, int attempts) {
  for (int i = 0; i < attempts; ++i) {
    try {
      return rpc(target, 0, [](ChordNode&) { return true; });
    } catch (const net::RpcError&) {
      // Crashed targets fail every attempt; dropped messages deserve a retry.
      if (failures_.is_crashed(target)) return false;
    }
  }
  return false;
}

}  // namespace dhtidx::dht
