#include "dht/pastry.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dhtidx::dht {

namespace {

using Bytes = std::array<std::uint8_t, Id::kBytes>;

/// to - from (mod 2^160), byte-wise.
Bytes clockwise_diff(const Id& from, const Id& to) {
  Bytes diff{};
  int borrow = 0;
  const auto& a = from.bytes();
  const auto& b = to.bytes();
  for (std::size_t i = Id::kBytes; i-- > 0;) {
    int d = static_cast<int>(b[i]) - static_cast<int>(a[i]) - borrow;
    if (d < 0) {
      d += 256;
      borrow = 1;
    } else {
      borrow = 0;
    }
    diff[i] = static_cast<std::uint8_t>(d);
  }
  return diff;
}

/// min(|a - key|, |key - a|) on the circle, as exact bytes.
Bytes circular_distance(const Id& a, const Id& key) {
  const Bytes d1 = clockwise_diff(a, key);
  const Bytes d2 = clockwise_diff(key, a);
  return std::min(d1, d2);
}

constexpr std::uint64_t kIdBytes = Id::kBytes;

}  // namespace

int pastry_digit(const Id& id, std::size_t i) {
  const std::uint8_t byte = id.bytes()[i / 2];
  return (i % 2 == 0) ? (byte >> 4) : (byte & 0x0F);
}

std::size_t pastry_prefix(const Id& a, const Id& b) {
  std::size_t shared = 0;
  while (shared < kPastryDigits && pastry_digit(a, shared) == pastry_digit(b, shared)) {
    ++shared;
  }
  return shared;
}

bool pastry_closer(const Id& a, const Id& b, const Id& key) {
  const Bytes da = circular_distance(a, key);
  const Bytes db = circular_distance(b, key);
  if (da != db) return da < db;
  return a < b;  // deterministic tie-break
}

// ---------------------------------------------------------------- PastryNode

void PastryNode::learn(const Id& node) {
  if (node == id_) return;

  // Leaf sets: keep the kLeafHalf nearest on each side.
  const auto insert_side = [&](std::vector<Id>& side, const Id& reference_order) {
    (void)reference_order;
    if (std::find(side.begin(), side.end(), node) != side.end()) return;
    side.push_back(node);
  };
  insert_side(larger_, id_);
  std::sort(larger_.begin(), larger_.end(), [&](const Id& x, const Id& y) {
    return clockwise_diff(id_, x) < clockwise_diff(id_, y);
  });
  if (larger_.size() > kLeafHalf) larger_.resize(kLeafHalf);
  insert_side(smaller_, id_);
  std::sort(smaller_.begin(), smaller_.end(), [&](const Id& x, const Id& y) {
    return clockwise_diff(x, id_) < clockwise_diff(y, id_);
  });
  if (smaller_.size() > kLeafHalf) smaller_.resize(kLeafHalf);

  // Routing table.
  const std::size_t row = pastry_prefix(id_, node);
  if (row < kPastryDigits) {
    const auto column = static_cast<std::size_t>(pastry_digit(node, row));
    if (!table_[row][column]) table_[row][column] = node;
  }
}

void PastryNode::forget(const Id& node) {
  larger_.erase(std::remove(larger_.begin(), larger_.end(), node), larger_.end());
  smaller_.erase(std::remove(smaller_.begin(), smaller_.end(), node), smaller_.end());
  const std::size_t row = pastry_prefix(id_, node);
  if (row < kPastryDigits) {
    const auto column = static_cast<std::size_t>(pastry_digit(node, row));
    if (table_[row][column] && *table_[row][column] == node) {
      table_[row][column].reset();
    }
  }
}

std::vector<Id> PastryNode::known_nodes() const {
  std::vector<Id> known;
  known.reserve(smaller_.size() + larger_.size() + 16);
  known.insert(known.end(), smaller_.begin(), smaller_.end());
  known.insert(known.end(), larger_.begin(), larger_.end());
  for (const auto& row : table_) {
    for (const auto& entry : row) {
      if (entry) known.push_back(*entry);
    }
  }
  std::sort(known.begin(), known.end());
  known.erase(std::unique(known.begin(), known.end()), known.end());
  return known;
}

std::optional<Id> PastryNode::table_entry(std::size_t row, std::size_t column) const {
  return table_.at(row).at(column);
}

bool PastryNode::key_in_leaf_range(const Id& key) const {
  if (smaller_.empty() || larger_.empty()) return true;  // tiny network
  // The leaf set spans from the farthest smaller leaf to the farthest larger
  // leaf, clockwise through id_.
  const Id& low = smaller_.back();
  const Id& high = larger_.back();
  return Id::in_half_open(key, low, high) || key == low;
}

Id PastryNode::closest_known(const Id& key) const {
  Id best = id_;
  for (const Id& leaf : smaller_) {
    if (pastry_closer(leaf, best, key)) best = leaf;
  }
  for (const Id& leaf : larger_) {
    if (pastry_closer(leaf, best, key)) best = leaf;
  }
  return best;
}

Id PastryNode::route(const Id& key, int& hops) {
  for (int attempt = 0; attempt < 64; ++attempt) {
    Id next = id_;
    if (key_in_leaf_range(key)) {
      next = closest_known(key);
      if (next == id_) return id_;  // this node is the root for the key
    } else {
      const std::size_t row = pastry_prefix(id_, key);
      const auto column = static_cast<std::size_t>(pastry_digit(key, row));
      const std::optional<Id>& entry = table_[row][column];
      if (entry) {
        next = *entry;
      } else {
        // Rare case: any known node strictly closer to the key whose shared
        // prefix with the key is at least as long.
        Id best = id_;
        for (const Id& candidate : known_nodes()) {
          if (pastry_prefix(candidate, key) >= row && pastry_closer(candidate, best, key)) {
            best = candidate;
          }
        }
        if (best == id_) return closest_known(key);
        next = best;
      }
    }
    try {
      ++hops;
      return network_->rpc(next, kIdBytes,
                           [&](PastryNode& n) { return n.route(key, hops); });
    } catch (const net::RpcError&) {
      forget(next);
    }
  }
  throw net::RpcError("pastry routing exhausted retries at " + id_.brief());
}

void PastryNode::repair() {
  // Prune dead state.
  for (const Id& node : known_nodes()) {
    if (!network_->ping(node)) forget(node);
  }
  // Refill from the nearest live neighbours' knowledge (leaf-set gossip).
  std::vector<Id> sources;
  if (!smaller_.empty()) sources.push_back(smaller_.front());
  if (!larger_.empty()) sources.push_back(larger_.front());
  if (!smaller_.empty()) sources.push_back(smaller_.back());
  if (!larger_.empty()) sources.push_back(larger_.back());
  for (const Id& source : sources) {
    try {
      const auto known = network_->rpc(
          source, kIdBytes * (2 * kLeafHalf + 8),
          [&](PastryNode& n) {
            n.learn(id_);
            return n.known_nodes();
          });
      for (const Id& node : known) {
        if (network_->is_alive(node)) learn(node);
      }
    } catch (const net::RpcError&) {
      forget(source);
    }
  }
}

// ------------------------------------------------------------- PastryNetwork

PastryNetwork::PastryNetwork(std::uint64_t seed)
    : failures_(seed ^ 0x77), rng_(seed) {}

Id PastryNetwork::add_node(const std::string& name) {
  const Id id = Id::hash(name);
  if (nodes_.contains(id)) throw InvariantError("node id already present: " + id.brief());
  std::vector<Id> live = node_ids();
  auto node = std::make_unique<PastryNode>(id, this);
  PastryNode* raw = node.get();
  nodes_.emplace(id, std::move(node));
  if (live.empty()) return id;

  // Join: route to our own id from a bootstrap; adopt the root's state and
  // announce ourselves to everyone we learned about.
  const Id bootstrap = live[rng_.next_index(live.size())];
  int hops = 0;
  const Id root = rpc(bootstrap, kIdBytes,
                      [&](PastryNode& n) { return n.route(id, hops); });
  raw->learn(bootstrap);
  raw->learn(root);
  const auto root_known = rpc(root, kIdBytes * 16,
                              [&](PastryNode& n) { return n.known_nodes(); });
  for (const Id& other : root_known) {
    if (is_alive(other)) raw->learn(other);
  }
  for (const Id& other : raw->known_nodes()) {
    try {
      rpc(other, kIdBytes, [&](PastryNode& n) {
        n.learn(id);
        return 0;
      });
    } catch (const net::RpcError&) {
    }
  }
  return id;
}

void PastryNetwork::crash(const Id& id) {
  node(id).alive_ = false;
  failures_.crash(id);
}

void PastryNetwork::repair_round() {
  std::vector<Id> live = node_ids();
  rng_.shuffle(live);
  for (const Id& id : live) {
    PastryNode& n = node(id);
    if (n.alive()) n.repair();
  }
}

bool PastryNetwork::leaf_sets_correct() const {
  std::vector<Id> live;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) live.push_back(nid);
  }
  if (live.size() < 2) return true;
  std::sort(live.begin(), live.end());
  const std::size_t per_side = std::min(PastryNode::kLeafHalf, live.size() - 1);
  for (std::size_t i = 0; i < live.size(); ++i) {
    const PastryNode& n = *nodes_.at(live[i]);
    // Expected clockwise neighbours.
    for (std::size_t k = 1; k <= per_side; ++k) {
      const Id& expected = live[(i + k) % live.size()];
      if (k > n.larger_leaves().size() || n.larger_leaves()[k - 1] != expected) {
        // Wrap collisions (tiny rings) can place a node on both sides; only
        // fail when the node is absent entirely.
        const auto& l = n.larger_leaves();
        if (std::find(l.begin(), l.end(), expected) == l.end()) return false;
      }
    }
    for (std::size_t k = 1; k <= per_side; ++k) {
      const Id& expected = live[(i + live.size() - k) % live.size()];
      const auto& s = n.smaller_leaves();
      if (std::find(s.begin(), s.end(), expected) == s.end()) return false;
    }
  }
  return true;
}

LookupResult PastryNetwork::lookup(const Id& key) {
  std::vector<Id> live = node_ids();
  if (live.empty()) throw NotFoundError("pastry network has no live nodes");
  return lookup_from(live[rng_.next_index(live.size())], key);
}

LookupResult PastryNetwork::lookup_from(const Id& origin, const Id& key) {
  PastryNode& n = node(origin);
  if (!n.alive()) throw net::RpcError("origin node " + origin.brief() + " is down");
  int hops = 0;
  const Id root = n.route(key, hops);
  return LookupResult{root, hops};
}

std::vector<Id> PastryNetwork::node_ids() const {
  std::vector<Id> live;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) live.push_back(nid);
  }
  return live;
}

std::size_t PastryNetwork::size() const {
  std::size_t count = 0;
  for (const auto& [nid, n] : nodes_) {
    if (n->alive()) ++count;
  }
  return count;
}

PastryNode& PastryNetwork::node(const Id& id) {
  const auto it = nodes_.find(id);
  if (it == nodes_.end()) throw NotFoundError("no such node: " + id.brief());
  return *it->second;
}

bool PastryNetwork::is_alive(const Id& id) const {
  const auto it = nodes_.find(id);
  return it != nodes_.end() && it->second->alive();
}

bool PastryNetwork::ping(const Id& target) {
  try {
    return rpc(target, 0, [](PastryNode&) { return true; });
  } catch (const net::RpcError&) {
    return false;
  }
}

}  // namespace dhtidx::dht
