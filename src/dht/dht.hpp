// The key-to-node abstraction the indexing layer builds on.
//
// Section III-A: "Any node can use the DHT substrate to determine the current
// live node that is responsible for a given key." Two implementations are
// provided: Ring (an instant consistent-hashing view, used by the large
// simulations, where routing cost is irrelevant to the indexing metrics) and
// ChordNetwork (a full Chord protocol with finger tables, stabilization and
// failure handling).
#pragma once

#include <cstdint>
#include <vector>

#include "common/id.hpp"

namespace dhtidx::dht {

/// Result of resolving a key to its responsible node.
struct LookupResult {
  Id node;        ///< the live node responsible for the key
  int hops = 0;   ///< overlay routing hops used to find it
};

/// Key-to-node resolution service.
class Dht {
 public:
  virtual ~Dht() = default;

  /// Resolves `key` to the live node responsible for it.
  /// Throws NotFoundError when the network is empty.
  virtual LookupResult lookup(const Id& key) = 0;

  /// The nodes a record under `key` should be replicated on: the responsible
  /// node followed by up to `count - 1` distinct fallback nodes (typically
  /// its clockwise successors). The default implementation provides no
  /// redundancy beyond the responsible node.
  virtual std::vector<Id> replica_set(const Id& key, std::size_t count) {
    (void)count;
    return {lookup(key).node};
  }

  /// Ids of all live nodes (unspecified order).
  virtual std::vector<Id> node_ids() const = 0;

  /// Number of live nodes.
  virtual std::size_t size() const = 0;
};

}  // namespace dhtidx::dht
