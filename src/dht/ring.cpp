#include "dht/ring.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dhtidx::dht {

Ring Ring::with_nodes(std::size_t n, const std::string& prefix) {
  Ring ring;
  for (std::size_t i = 0; i < n; ++i) {
    ring.add(Id::hash(prefix + std::to_string(i)));
  }
  return ring;
}

bool Ring::add(const Id& node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it != nodes_.end() && *it == node) return false;
  nodes_.insert(it, node);
  return true;
}

bool Ring::remove(const Id& node) {
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), node);
  if (it == nodes_.end() || *it != node) return false;
  nodes_.erase(it);
  return true;
}

bool Ring::contains(const Id& node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

Id Ring::successor(const Id& key) const {
  if (nodes_.empty()) throw NotFoundError("ring has no nodes");
  const auto it = std::lower_bound(nodes_.begin(), nodes_.end(), key);
  return it == nodes_.end() ? nodes_.front() : *it;
}

LookupResult Ring::lookup(const Id& key) { return LookupResult{successor(key), 0}; }

std::vector<Id> Ring::replica_set(const Id& key, std::size_t count) {
  if (nodes_.empty()) throw NotFoundError("ring has no nodes");
  std::vector<Id> replicas;
  const std::size_t take = std::min(count, nodes_.size());
  replicas.reserve(take);
  auto it = std::lower_bound(nodes_.begin(), nodes_.end(), key);
  std::size_t index = it == nodes_.end() ? 0 : static_cast<std::size_t>(it - nodes_.begin());
  for (std::size_t i = 0; i < take; ++i) {
    replicas.push_back(nodes_[(index + i) % nodes_.size()]);
  }
  return replicas;
}

}  // namespace dhtidx::dht
