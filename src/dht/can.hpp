// CAN: a Content-Addressable Network substrate (Ratnasamy et al., SIGCOMM
// 2001) -- the second DHT the paper names as a possible substrate.
//
// The key space is the 2-d unit torus. Every node owns one or more
// rectangular zones; a key hashes to a point and belongs to the node whose
// zone contains it. Joins split the zone containing a random point; greedy
// routing forwards through bordering neighbours toward the target point;
// crashes hand the orphaned zones to the bordering neighbour with the
// smallest volume (the CAN takeover rule, simplified to immediate handover).
//
// Like ChordNetwork this is a single-process protocol simulation with
// routing-traffic accounting; it exists to demonstrate (and test) that the
// indexing layer is substrate-agnostic across fundamentally different
// geometries (ring vs. torus).
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "common/id.hpp"
#include "common/rng.hpp"
#include "dht/dht.hpp"
#include "net/stats.hpp"

namespace dhtidx::dht {

/// A point on the 2-d unit torus.
struct CanPoint {
  double x = 0.0;
  double y = 0.0;
};

/// An axis-aligned rectangle [lo.x, hi.x) x [lo.y, hi.y).
struct CanZone {
  CanPoint lo;
  CanPoint hi;

  bool contains(const CanPoint& p) const {
    return p.x >= lo.x && p.x < hi.x && p.y >= lo.y && p.y < hi.y;
  }
  double width() const { return hi.x - lo.x; }
  double height() const { return hi.y - lo.y; }
  double volume() const { return width() * height(); }

  /// Torus distance from the zone to a point (zero when inside).
  double distance_to(const CanPoint& p) const;

  /// True when the zones share a border on the torus (abutting edges with
  /// overlapping extent in the other dimension).
  static bool adjacent(const CanZone& a, const CanZone& b);
};

/// A complete simulated CAN overlay.
class CanNetwork : public Dht {
 public:
  explicit CanNetwork(std::uint64_t seed = 0xCA9);

  /// Adds a node (id = SHA-1(name)): picks a random point, splits the zone
  /// owning it, and hands one half to the new node. Returns its id.
  Id add_node(const std::string& name);

  /// Crashes a node; its zones are taken over by bordering neighbours.
  void crash(const Id& id);

  /// Maps a key to its point on the torus.
  static CanPoint point_of(const Id& key);

  // Dht interface. lookup() greedily routes from a random node.
  LookupResult lookup(const Id& key) override;
  LookupResult lookup_from(const Id& origin, const Id& key);
  std::vector<Id> node_ids() const override;
  std::size_t size() const override;

  /// Zones currently owned by a node.
  const std::vector<CanZone>& zones_of(const Id& id) const;

  /// Node ids bordering any zone of `id`.
  std::vector<Id> neighbours_of(const Id& id) const;

  /// Invariant: the live zones tile the unit square exactly (total volume 1,
  /// pairwise disjoint). Used by tests.
  bool zones_partition_space(double tolerance = 1e-9) const;

  net::TrafficStats& routing_stats() { return routing_stats_; }

 private:
  struct Node {
    std::vector<CanZone> zones;
    bool alive = true;
  };

  /// The live node whose zone contains `p` (authoritative, non-routing).
  Id owner_of(const CanPoint& p) const;

  // dhtidx-lint: allow(hot-path-map) "substrate membership, mutated only at join/leave; sorted iteration order is part of deterministic node enumeration"
  std::map<Id, Node> nodes_;
  net::TrafficStats routing_stats_;
  Rng rng_;
};

}  // namespace dhtidx::dht
