// Snapshot persistence for the distributed index and storage.
//
// Serializes every query-to-query mapping and every stored record into one
// XML document (using the library's own XML layer), and restores them into a
// fresh service/store pair. Mappings and records are re-placed through the
// *current* DHT on load, so a snapshot taken under one membership can be
// restored under another -- the covering checks re-run on load, keeping the
// arbitrary-linking resilience property even against tampered snapshots.
//
// Shortcut caches are deliberately not persisted: they are soft state the
// system rebuilds from live traffic (Section IV-C's adaptive cache).
#pragma once

#include <string>
#include <string_view>

#include "index/service.hpp"
#include "storage/dht_store.hpp"

namespace dhtidx::persist {

/// Serializes the regular index entries and all stored records.
std::string save_snapshot(const index::IndexService& service,
                          const storage::DhtStore& store);

/// Counts of what a load restored.
struct LoadStats {
  std::size_t mappings = 0;
  std::size_t records = 0;
};

/// Restores a snapshot into (typically empty) service/store instances.
/// Throws ParseError on malformed input and InvariantError when a mapping
/// violates the covering relation.
LoadStats load_snapshot(std::string_view snapshot_xml, index::IndexService& service,
                        storage::DhtStore& store);

/// File-based convenience wrappers. Throw dhtidx::Error on I/O failure.
void save_snapshot_file(const std::string& path, const index::IndexService& service,
                        const storage::DhtStore& store);
LoadStats load_snapshot_file(const std::string& path, index::IndexService& service,
                             storage::DhtStore& store);

}  // namespace dhtidx::persist
