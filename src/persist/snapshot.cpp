#include "persist/snapshot.hpp"

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "query/query.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace dhtidx::persist {

std::string save_snapshot(const index::IndexService& service,
                          const storage::DhtStore& store) {
  xml::Element root{"dhtidx-snapshot"};
  root.set_attribute("version", "1");

  xml::Element& index = root.add_child(xml::Element{"index"});
  for (const auto& [node, state] : service.states()) {
    for (const auto& [source, targets] : state.entries()) {
      for (const index::IndexNodeState::TargetRef& ref : targets) {
        xml::Element mapping{"mapping"};
        mapping.set_attribute("source", source->canonical());
        mapping.set_attribute("target", ref.target->canonical());
        index.add_child(std::move(mapping));
      }
    }
  }

  xml::Element& data = root.add_child(xml::Element{"storage"});
  for (const auto& [node, node_store] : store.node_stores()) {
    for (const Id& key : node_store.keys()) {
      for (const storage::Record& record : node_store.get(key)) {
        xml::Element item{"record"};
        item.set_attribute("key", key.to_hex());
        item.set_attribute("kind", record.kind);
        item.set_attribute("virtual-bytes", std::to_string(record.virtual_payload_bytes));
        item.set_text(record.payload);
        data.add_child(std::move(item));
      }
    }
  }
  return xml::write(root, {.pretty = true, .declaration = true});
}

LoadStats load_snapshot(std::string_view snapshot_xml, index::IndexService& service,
                        storage::DhtStore& store) {
  const xml::Element root = xml::parse(snapshot_xml);
  if (root.name() != "dhtidx-snapshot") {
    throw ParseError("snapshot root must be <dhtidx-snapshot>, got <" + root.name() + ">");
  }
  LoadStats stats;
  if (const xml::Element* index = root.child("index")) {
    for (const xml::Element& mapping : index->children()) {
      if (mapping.name() != "mapping") {
        throw ParseError("unexpected element <" + mapping.name() + "> in <index>");
      }
      const auto source = mapping.attribute("source");
      const auto target = mapping.attribute("target");
      if (!source || !target) throw ParseError("<mapping> needs source and target");
      // insert() re-validates covering: a tampered snapshot cannot smuggle
      // arbitrary links in.
      service.insert(query::Query::parse(*source), query::Query::parse(*target));
      ++stats.mappings;
    }
  }
  if (const xml::Element* data = root.child("storage")) {
    for (const xml::Element& item : data->children()) {
      if (item.name() != "record") {
        throw ParseError("unexpected element <" + item.name() + "> in <storage>");
      }
      const auto key = item.attribute("key");
      const auto kind = item.attribute("kind");
      if (!key || !kind) throw ParseError("<record> needs key and kind");
      storage::Record record;
      record.kind = *kind;
      record.payload = item.text();
      if (const auto virtual_bytes = item.attribute("virtual-bytes")) {
        try {
          record.virtual_payload_bytes = std::stoull(*virtual_bytes);
        } catch (const std::exception&) {
          throw ParseError("malformed virtual-bytes: " + *virtual_bytes);
        }
      }
      store.put(Id::from_hex(*key), std::move(record));
      ++stats.records;
    }
  }
  return stats;
}

void save_snapshot_file(const std::string& path, const index::IndexService& service,
                        const storage::DhtStore& store) {
  std::ofstream out{path};
  if (!out) throw Error("cannot open snapshot file for writing: " + path);
  out << save_snapshot(service, store);
  if (!out) throw Error("failed writing snapshot file: " + path);
}

LoadStats load_snapshot_file(const std::string& path, index::IndexService& service,
                             storage::DhtStore& store) {
  std::ifstream in{path};
  if (!in) throw Error("cannot open snapshot file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return load_snapshot(buffer.str(), service, store);
}

}  // namespace dhtidx::persist
