#include "biblio/corpus.hpp"

#include <set>
#include <unordered_map>
#include <unordered_set>

#include "common/distributions.hpp"
#include "common/error.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace dhtidx::biblio {

namespace {

// Name material for the synthetic author pool. Combinations of these parts
// give ~10k distinct plausible names before the uniqueness suffix kicks in.
constexpr const char* kFirstNames[] = {
    "John",   "Alan",    "Maria",  "Wei",     "Anna",   "David",  "Elena",
    "Ravi",   "Sofia",   "Peter",  "Laura",   "Kenji",  "Ingrid", "Omar",
    "Nadia",  "Carlos",  "Grace",  "Henrik",  "Yuki",   "Pablo",  "Irene",
    "Tomas",  "Priya",   "Marco",  "Claire",  "Dmitri", "Aisha",  "Stefan",
    "Lucia",  "Andre",   "Mei",    "Jorge",   "Karin",  "Samuel", "Noor",
    "Victor", "Helena",  "Akira",  "Fatima",  "Liam",
};

constexpr const char* kLastStems[] = {
    "Smith",   "Doe",     "Garcia",  "Chen",    "Muller",  "Rossi",   "Kumar",
    "Tanaka",  "Silva",   "Novak",   "Berg",    "Costa",   "Dubois",  "Evans",
    "Fischer", "Gupta",   "Haddad",  "Ivanov",  "Jensen",  "Kowalski","Larsen",
    "Moreau",  "Nakamura","Olsen",   "Petrov",  "Quinn",   "Ricci",   "Schmidt",
    "Torres",  "Ueda",    "Vargas",  "Weber",   "Xu",      "Yamada",  "Zhang",
    "Andersen","Bianchi", "Carvalho","Dimitrov","Eriksson",
};

constexpr const char* kVenueStems[] = {
    "SIGCOMM", "INFOCOM", "SOSP",   "OSDI",   "PODC",  "ICDCS", "SIGMOD",
    "VLDB",    "NSDI",    "IPTPS",  "ICNP",   "USENIX","EUROSYS","SPAA",
    "MIDDLEWARE", "ICPP", "HPDC",   "SRDS",   "DSN",   "WWW",
};

constexpr const char* kTitleWords[] = {
    "scalable",    "distributed", "adaptive",   "peer-to-peer", "hierarchical",
    "efficient",   "robust",      "decentralized", "dynamic",   "incremental",
    "indexing",    "routing",     "caching",    "lookup",       "replication",
    "storage",     "search",      "naming",     "multicast",    "consensus",
    "hashing",     "balancing",   "locality",   "membership",   "gossip",
    "overlay",     "network",     "protocol",   "system",       "service",
    "architecture","framework",   "algorithm",  "infrastructure","mechanism",
    "analysis",    "evaluation",  "design",     "performance",  "model",
    "congestion",  "bandwidth",   "latency",    "availability", "anonymity",
    "streaming",   "discovery",   "federation", "semantics",    "queries",
    "wavelets",    "tcp",         "ipv6",       "mobility",     "wireless",
    "sensors",     "grids",       "clusters",   "transactions", "recovery",
};

std::string capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> generate_author_pool(std::size_t count,
                                                                      Rng& rng) {
  // Author pool: unique (first, last) pairs.
  std::vector<std::pair<std::string, std::string>> authors;
  authors.reserve(count);
  std::set<std::pair<std::string, std::string>> seen_authors;
  while (authors.size() < count) {
    std::string first = kFirstNames[rng.next_index(std::size(kFirstNames))];
    std::string last = kLastStems[rng.next_index(std::size(kLastStems))];
    if (!seen_authors.emplace(first, last).second) {
      // Disambiguate collisions with a middle-initial style suffix.
      last += std::string(1, static_cast<char>('A' + rng.next_index(26))) + ".";
      last = std::string{kLastStems[rng.next_index(std::size(kLastStems))]} + "-" + last;
      if (!seen_authors.emplace(first, last).second) continue;
    }
    authors.emplace_back(std::move(first), std::move(last));
  }
  return authors;
}

std::vector<std::string> generate_venue_pool(std::size_t count) {
  std::vector<std::string> venues;
  venues.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::string name = kVenueStems[i % std::size(kVenueStems)];
    if (i >= std::size(kVenueStems)) {
      name += "-" + std::to_string(i / std::size(kVenueStems) + 1);
    }
    venues.push_back(std::move(name));
  }
  return venues;
}

std::size_t title_word_count() { return std::size(kTitleWords); }

const char* title_word(std::size_t index) { return kTitleWords[index]; }

Corpus::Corpus(std::vector<Article> articles) : articles_(std::move(articles)) {
  for (std::size_t i = 0; i < articles_.size(); ++i) articles_[i].id = i;
}

Corpus Corpus::generate(const CorpusConfig& config) {
  if (config.articles == 0 || config.authors == 0 || config.conferences == 0) {
    throw InvariantError("corpus config requires positive counts");
  }
  Rng rng{config.seed};

  const std::vector<std::pair<std::string, std::string>> authors =
      generate_author_pool(config.authors, rng);
  const std::vector<std::string> venues = generate_venue_pool(config.conferences);

  const ZipfSampler author_sampler{config.authors, config.author_zipf};
  const ZipfSampler venue_sampler{config.conferences, config.conference_zipf};
  const int year_span = config.last_year - config.first_year + 1;

  std::vector<Article> articles;
  articles.reserve(config.articles);
  std::unordered_set<std::string> seen_titles;
  for (std::size_t i = 0; i < config.articles; ++i) {
    Article a;
    a.id = i;
    const auto& [first, last] = authors[author_sampler.sample(rng) - 1];
    a.first_name = first;
    a.last_name = last;
    a.conference = venues[venue_sampler.sample(rng) - 1];
    // Publication years ramp up linearly toward the snapshot year, like the
    // growth of a real archive: sample two uniforms and keep the later one.
    const int y1 = static_cast<int>(rng.next_in(0, year_span - 1));
    const int y2 = static_cast<int>(rng.next_in(0, year_span - 1));
    a.year = config.first_year + std::max(y1, y2);
    // Titles: 2-4 content words, unique across the corpus.
    for (int attempt = 0;; ++attempt) {
      const int words = static_cast<int>(rng.next_in(2, 4));
      std::string title;
      for (int w = 0; w < words; ++w) {
        std::string word = kTitleWords[rng.next_index(std::size(kTitleWords))];
        if (w == 0) word = capitalize(std::move(word));
        if (w > 0) title += ' ';
        title += word;
      }
      if (attempt > 8) title += " (" + std::to_string(i) + ")";
      if (seen_titles.insert(title).second) {
        a.title = std::move(title);
        break;
      }
    }
    // File sizes: uniform in [0.4, 1.6] x mean, so the mean matches the
    // paper's 250 KB estimate.
    const double factor = 0.4 + 1.2 * rng.next_double();
    a.file_bytes = static_cast<std::uint64_t>(static_cast<double>(config.mean_file_bytes) * factor);
    articles.push_back(std::move(a));
  }
  return Corpus{std::move(articles)};
}

std::size_t Corpus::distinct_authors() const {
  std::set<std::pair<std::string, std::string>> authors;
  for (const Article& a : articles_) authors.emplace(a.first_name, a.last_name);
  return authors.size();
}

std::size_t Corpus::distinct_conferences() const {
  std::set<std::string> venues;
  for (const Article& a : articles_) venues.insert(a.conference);
  return venues.size();
}

std::vector<const Article*> Corpus::by_author(const std::string& first,
                                              const std::string& last) const {
  std::vector<const Article*> out;
  for (const Article& a : articles_) {
    if (a.first_name == first && a.last_name == last) out.push_back(&a);
  }
  return out;
}

std::string Corpus::to_xml() const {
  xml::Element root{"dblp"};
  for (const Article& a : articles_) root.add_child(a.descriptor());
  return xml::write(root, {.pretty = true, .declaration = true});
}

Corpus Corpus::from_xml(std::string_view document) {
  const xml::Element root = xml::parse(document);
  if (root.name() != "dblp") throw ParseError("corpus root must be <dblp>");
  std::vector<Article> articles;
  articles.reserve(root.children().size());
  for (const xml::Element& child : root.children()) {
    articles.push_back(article_from_descriptor(child));
  }
  return Corpus{std::move(articles)};
}

}  // namespace dhtidx::biblio
