#include "biblio/stream.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace dhtidx::biblio {

namespace {

// Domain separation: pool construction and per-article draws must not reuse
// the raw config seed (the pools already consumed a stream derived from it).
constexpr std::uint64_t kArticleSalt = 0x57A97EA317AC1Eull;

std::string capitalize(std::string word) {
  if (!word.empty() && word[0] >= 'a' && word[0] <= 'z') {
    word[0] = static_cast<char>(word[0] - 'a' + 'A');
  }
  return word;
}

}  // namespace

ArticleStream::ArticleStream(const CorpusConfig& config)
    : config_(config),
      authors_([&config] {
        if (config.articles == 0 || config.authors == 0 || config.conferences == 0) {
          throw InvariantError("corpus config requires positive counts");
        }
        Rng pool_rng{config.seed};
        return generate_author_pool(config.authors, pool_rng);
      }()),
      venues_(generate_venue_pool(config.conferences)),
      author_sampler_(config.authors, config.author_zipf),
      venue_sampler_(config.conferences, config.conference_zipf),
      year_span_(config.last_year - config.first_year + 1) {}

Article ArticleStream::article(std::size_t index) const {
  if (index >= config_.articles) {
    throw InvariantError("article index out of range");
  }
  Rng rng{mix_seed(config_.seed ^ kArticleSalt, index)};
  Article a;
  a.id = index;
  const auto& [first, last] = authors_[author_sampler_.sample(rng) - 1];
  a.first_name = first;
  a.last_name = last;
  a.conference = venues_[venue_sampler_.sample(rng) - 1];
  // Same ramp as Corpus::generate: two uniforms, keep the later year.
  const int y1 = static_cast<int>(rng.next_in(0, year_span_ - 1));
  const int y2 = static_cast<int>(rng.next_in(0, year_span_ - 1));
  a.year = config_.first_year + std::max(y1, y2);
  // Titles: 2-4 content words. Uniqueness cannot rely on a corpus-wide
  // seen-set here (that would serialize generation), so every title carries
  // its article index — unique by construction, and the MSDs stay distinct.
  const int words = static_cast<int>(rng.next_in(2, 4));
  std::string title;
  for (int w = 0; w < words; ++w) {
    std::string word = title_word(rng.next_index(title_word_count()));
    if (w == 0) word = capitalize(std::move(word));
    if (w > 0) title += ' ';
    title += word;
  }
  title += " (" + std::to_string(index) + ")";
  a.title = std::move(title);
  const double factor = 0.4 + 1.2 * rng.next_double();
  a.file_bytes =
      static_cast<std::uint64_t>(static_cast<double>(config_.mean_file_bytes) * factor);
  return a;
}

}  // namespace dhtidx::biblio
