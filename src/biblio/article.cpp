#include "biblio/article.hpp"

#include "common/error.hpp"

namespace dhtidx::biblio {

using query::Query;

xml::Element Article::descriptor() const {
  xml::Element root{"article"};
  xml::Element author{"author"};
  author.add_child("first", first_name);
  author.add_child("last", last_name);
  root.add_child(std::move(author));
  root.add_child("title", title);
  root.add_child("conf", conference);
  root.add_child("year", std::to_string(year));
  root.add_child("size", std::to_string(file_bytes));
  return root;
}

query::Query Article::msd() const { return Query::most_specific(descriptor()); }

query::Query Article::author_query() const {
  Query q{"article"};
  q.add_field("author/first", first_name);
  q.add_field("author/last", last_name);
  return q;
}

query::Query Article::title_query() const {
  Query q{"article"};
  q.add_field("title", title);
  return q;
}

query::Query Article::conference_query() const {
  Query q{"article"};
  q.add_field("conf", conference);
  return q;
}

query::Query Article::year_query() const {
  Query q{"article"};
  q.add_field("year", std::to_string(year));
  return q;
}

query::Query Article::author_title_query() const {
  Query q = author_query();
  q.add_field("title", title);
  return q;
}

query::Query Article::author_year_query() const {
  Query q = author_query();
  q.add_field("year", std::to_string(year));
  return q;
}

query::Query Article::conference_year_query() const {
  Query q{"article"};
  q.add_field("conf", conference);
  q.add_field("year", std::to_string(year));
  return q;
}

query::Query Article::author_conference_query() const {
  Query q = author_query();
  q.add_field("conf", conference);
  return q;
}

query::Query Article::author_conference_year_query() const {
  Query q = author_conference_query();
  q.add_field("year", std::to_string(year));
  return q;
}

Article article_from_descriptor(const xml::Element& descriptor) {
  if (descriptor.name() != "article") {
    throw ParseError("descriptor root must be <article>, got <" + descriptor.name() + ">");
  }
  const xml::Element* author = descriptor.child("author");
  const xml::Element* title = descriptor.child("title");
  const xml::Element* conf = descriptor.child("conf");
  const xml::Element* year = descriptor.child("year");
  if (!author || !title || !conf || !year) {
    throw ParseError("descriptor is missing a required field");
  }
  const xml::Element* first = author->child("first");
  const xml::Element* last = author->child("last");
  if (!first || !last) throw ParseError("author must have <first> and <last>");

  Article a;
  a.first_name = first->text();
  a.last_name = last->text();
  a.title = title->text();
  a.conference = conf->text();
  try {
    a.year = std::stoi(year->text());
  } catch (const std::exception&) {
    throw ParseError("malformed <year>: " + year->text());
  }
  if (const xml::Element* size = descriptor.child("size")) {
    try {
      a.file_bytes = std::stoull(size->text());
    } catch (const std::exception&) {
      throw ParseError("malformed <size>: " + size->text());
    }
  }
  return a;
}

}  // namespace dhtidx::biblio
