// Bibliographic articles: the data items of the paper's running example.
//
// An Article mirrors the descriptors of Figure 1: author (first/last), title,
// conference, year, and file size. It can render itself as an XML descriptor,
// derive its most specific query (MSD), and build the partial queries the
// workload model issues (author-only, title-only, ...).
#pragma once

#include <cstdint>
#include <string>

#include "query/query.hpp"
#include "xml/node.hpp"

namespace dhtidx::biblio {

/// One article in the bibliographic database.
struct Article {
  std::size_t id = 0;  ///< corpus-local identifier (also the popularity rank base)
  std::string first_name;
  std::string last_name;
  std::string title;
  std::string conference;
  int year = 0;
  std::uint64_t file_bytes = 0;  ///< size of the (virtual) article file

  /// The XML descriptor (Figure 1 layout).
  xml::Element descriptor() const;

  /// The most specific query for this article's descriptor.
  query::Query msd() const;

  /// Partial queries over individual fields (used by schemes and workload).
  query::Query author_query() const;
  query::Query title_query() const;
  query::Query conference_query() const;
  query::Query year_query() const;
  query::Query author_title_query() const;
  query::Query author_year_query() const;
  query::Query conference_year_query() const;
  query::Query author_conference_query() const;
  query::Query author_conference_year_query() const;

  /// Name of the stored file ("x.pdf" in Figure 5).
  std::string file_name() const { return "article-" + std::to_string(id) + ".pdf"; }

  bool operator==(const Article&) const = default;
};

/// Parses an Article back from its descriptor. Throws ParseError when
/// required fields are missing or malformed.
Article article_from_descriptor(const xml::Element& descriptor);

}  // namespace dhtidx::biblio
