// Counter-addressable synthetic corpus.
//
// Corpus::generate materializes every article up front, so a 1M-article world
// costs ~1M Article objects of resident memory before a single descriptor is
// indexed. ArticleStream keeps only the name pools (authors, venues) resident
// and synthesizes article i on demand from an Rng seeded with
// mix_seed(seed', i): article i is a pure function of (config, i), identical
// no matter when, how often, or from which worker thread it is generated.
// That counter addressing is what lets the sharded build partition articles
// across producers and what keeps peak RSS proportional to live index state
// rather than workload size.
//
// The stream is not draw-for-draw identical to Corpus::generate (which
// threads one RNG through all articles and enforces title uniqueness with a
// global seen-set — both inherently sequential). It preserves the properties
// the evaluation depends on: same name pools, same Zipf field skew, same
// ramping year distribution, same file-size law, and unique titles — by
// construction here, via an always-appended " (i)" suffix.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "biblio/article.hpp"
#include "biblio/corpus.hpp"
#include "common/distributions.hpp"
#include "common/rng.hpp"

namespace dhtidx::biblio {

/// O(1)-per-article generator over the CorpusConfig parameter space.
class ArticleStream {
 public:
  explicit ArticleStream(const CorpusConfig& config);

  /// Synthesizes article `index` (0-based, < size()). Thread-safe: const,
  /// touches only the immutable pools and a local Rng.
  Article article(std::size_t index) const;

  std::size_t size() const { return config_.articles; }
  const CorpusConfig& config() const { return config_; }

 private:
  CorpusConfig config_;
  std::vector<std::pair<std::string, std::string>> authors_;
  std::vector<std::string> venues_;
  ZipfSampler author_sampler_;
  ZipfSampler venue_sampler_;
  int year_span_;
};

}  // namespace dhtidx::biblio
