// Synthetic bibliographic corpus.
//
// The paper builds its database from the DBLP archive (115,879 article
// entries, of which 10,000 are used in simulation). DBLP is not available
// offline, so this generator produces a corpus with the same *structural*
// properties the evaluation depends on: a fixed set of descriptor fields,
// Zipf-distributed author productivity (a few prolific authors, a long tail),
// a skewed conference distribution, unique titles, and file sizes around the
// 250 KB average of Section V-B. See DESIGN.md for the substitution rationale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "biblio/article.hpp"
#include "common/rng.hpp"

namespace dhtidx::biblio {

/// Parameters of the synthetic corpus.
struct CorpusConfig {
  std::size_t articles = 10000;
  std::size_t authors = 2800;      ///< distinct authors (DBLP-like ratio ~3.5 papers/author)
  std::size_t conferences = 60;    ///< distinct venues
  double author_zipf = 0.85;       ///< productivity skew (1 = classic Zipf)
  double conference_zipf = 0.7;
  int first_year = 1980;
  int last_year = 2003;            ///< the paper's DBLP snapshot is Jan 2003
  std::uint64_t mean_file_bytes = 250000;  ///< Section V-B estimate
  std::uint64_t seed = 42;
};

/// An immutable collection of articles plus lookup helpers.
class Corpus {
 public:
  /// Generates a deterministic corpus from the config.
  static Corpus generate(const CorpusConfig& config);

  /// Builds a corpus from externally supplied articles (e.g. parsed XML).
  explicit Corpus(std::vector<Article> articles);

  const std::vector<Article>& articles() const { return articles_; }
  const Article& article(std::size_t index) const { return articles_.at(index); }
  std::size_t size() const { return articles_.size(); }

  /// Number of distinct authors ("first last" pairs).
  std::size_t distinct_authors() const;

  /// Number of distinct conferences.
  std::size_t distinct_conferences() const;

  /// Articles written by the given author.
  std::vector<const Article*> by_author(const std::string& first,
                                        const std::string& last) const;

  /// Serializes the whole corpus as a DBLP-style XML document.
  std::string to_xml() const;

  /// Parses a corpus from the to_xml() format.
  static Corpus from_xml(std::string_view document);

 private:
  std::vector<Article> articles_;
};

/// The deterministic name pools Corpus::generate draws from, exposed so the
/// streaming generator (biblio::ArticleStream) synthesizes articles from the
/// exact same material. Both consume `rng`/use the index scheme exactly as
/// Corpus::generate always did, so extracting them changed no output.

/// Unique (first, last) author pairs; consumes `rng`.
std::vector<std::pair<std::string, std::string>> generate_author_pool(std::size_t count,
                                                                      Rng& rng);

/// Venue names: stem table cycled with a numeric suffix past one full cycle.
std::vector<std::string> generate_venue_pool(std::size_t count);

/// The title-word vocabulary (index must be < title_word_count()).
std::size_t title_word_count();
const char* title_word(std::size_t index);

}  // namespace dhtidx::biblio
