#include "storage/dht_store.hpp"

#include <algorithm>
#include <utility>
#include <vector>

namespace dhtidx::storage {

namespace {
const std::vector<Record> kNoRecords;
}

std::vector<Id> DhtStore::candidate_replicas(const Id& key) {
  std::size_t want = replication_;
  if (failures_ != nullptr) want += failures_->crashed_count();
  return dht_.replica_set(key, want);
}

bool DhtStore::try_deliver(const Id& target, std::uint64_t request_bytes,
                           int& rpc_failures, const net::Message* wire) {
  if (failures_ == nullptr) return true;
  const std::size_t attempts = std::max<std::size_t>(retry_.attempts_per_replica, 1);
  for (std::size_t attempt = 1; attempt <= attempts; ++attempt) {
    try {
      failures_->check_delivery(target);
      return true;
    } catch (const net::RpcError&) {
      ++rpc_failures;
      net::active(ledger_).retries.record(request_bytes);
      if (bus_ != nullptr && wire != nullptr) bus_->record_lost(*wire);
      const double backoff = retry_.backoff_before_retry(attempt);
      if (backoff > 0.0 && latency_ != nullptr) latency_->add_ms(backoff);
    }
  }
  return false;
}

net::Message DhtStore::wire_message(net::Action action, const Id& node,
                                    const Id& key, const Record* record) const {
  net::Message message = net::Message::request(action, Id{}, node);
  message.payload.emplace_back(reinterpret_cast<const char*>(key.bytes().data()),
                               Id::kBytes);
  if (record != nullptr) {
    message.payload.push_back(record->kind);
    message.payload.push_back(record->payload);
  }
  return message;
}

const std::vector<Record>& DhtStore::records_at(const Id& node, const Id& key) const {
  topology_.assert_shared();  // probe-only: never grows the map
  const auto it = stores_.find(node);
  return it == stores_.end() ? kNoRecords : it->second.get(key);
}

StoreResult DhtStore::put(const Id& key, Record record) {
  topology_.assert_exclusive();  // placement may create a node's store
  const dht::LookupResult where = dht_.lookup(key);
  const std::uint64_t request_bytes =
      Id::kBytes + record.kind.size() + record.payload.size() + net::kMessageOverheadBytes;
  if (replication_ == 1 && failures_ == nullptr) {
    net::active(ledger_).queries.record(request_bytes);
    if (bus_ != nullptr) {
      bus_->post(wire_message(net::Action::kStore, where.node, key, &record),
                 [](const net::Message&) {});
    }
    stores_[where.node].put(key, std::move(record));
    return StoreResult{where.node, where.hops};
  }
  // PAST-style placement on the first `replication_` live candidates; the
  // publisher discovers dead nodes by timeout and skips past them.
  std::size_t placed = 0;
  for (const Id& replica : candidate_replicas(key)) {
    if (placed >= replication_) break;
    if (failures_ != nullptr && failures_->is_crashed(replica)) continue;
    net::active(ledger_).queries.record(request_bytes);
    if (bus_ != nullptr) {
      bus_->post(wire_message(net::Action::kStore, replica, key, &record),
                 [](const net::Message&) {});
    }
    stores_[replica].put(key, record);
    ++placed;
  }
  return StoreResult{where.node, where.hops};
}

DhtStore::GetResult DhtStore::get(const Id& key) {
  GetResult result;
  const dht::LookupResult where = dht_.lookup(key);
  result.node = where.node;
  result.hops = where.hops;
  result.replicas_tried = 0;
  const std::uint64_t request_bytes = Id::kBytes + net::kMessageOverheadBytes;
  const std::vector<Record>* found = nullptr;
  std::size_t contacted = 0;
  for (const Id& replica : candidate_replicas(key)) {
    if (contacted >= replication_) break;
    net::Message wire;
    if (bus_ != nullptr) wire = wire_message(net::Action::kFetch, replica, key, nullptr);
    if (!try_deliver(replica, request_bytes, result.rpc_failures,
                     bus_ != nullptr ? &wire : nullptr)) {
      continue;
    }
    ++contacted;
    net::active(ledger_).queries.record(request_bytes);
    if (bus_ != nullptr) {
      // Serve the fetch from the replica's live store at delivery time.
      bus_->exchange(std::move(wire), [&](const net::Message& m) {
        net::Message response = net::Message::response_to(m);
        const std::vector<Record>& held = records_at(m.to, key);
        for (const Record& r : held) {
          response.payload.push_back(r.kind);
          response.payload.push_back(r.payload);
        }
        if (held.empty()) response.status = net::Status::kNotFound;
        return response;
      });
    }
    const std::vector<Record>& records = records_at(replica, key);
    result.node = replica;
    found = &records;
    if (!records.empty()) break;
  }
  result.replicas_tried = static_cast<int>(contacted);
  if (contacted == 0) {
    // Nobody answered: no response message, the requester times out.
    result.unreachable = true;
    result.records = &kNoRecords;
    return result;
  }
  std::uint64_t response_bytes = net::kMessageOverheadBytes;
  for (const Record& r : *found) {
    // Virtual blob bytes are not charged: the evaluation measures index and
    // metadata traffic, not file downloads (Section V-D).
    response_bytes += r.kind.size() + r.payload.size();
  }
  net::active(ledger_).responses.record(response_bytes);
  result.records = found;
  return result;
}

DhtStore::RemoveResult DhtStore::remove(const Id& key, const Record& record) {
  const dht::LookupResult where = dht_.lookup(key);
  RemoveResult result{where.node, false, where.hops};
  const auto wire_remove = [&](const Id& node, bool removed) {
    if (bus_ == nullptr) return;
    bus_->exchange(wire_message(net::Action::kRemove, node, key, &record),
                   [&](const net::Message& m) {
                     net::Message response = net::Message::response_to(m);
                     response.status =
                         removed ? net::Status::kOk : net::Status::kNotFound;
                     return response;
                   });
  };
  if (replication_ == 1 && failures_ == nullptr) {
    net::active(ledger_).queries.record(Id::kBytes + record.kind.size() +
                                        record.payload.size() + net::kMessageOverheadBytes);
    if (NodeStore* store = find_node_store(where.node); store != nullptr) {
      result.removed = store->remove(key, record);
    }
    wire_remove(where.node, result.removed);
    return result;
  }
  std::size_t visited = 0;
  for (const Id& replica : candidate_replicas(key)) {
    if (visited >= replication_) break;
    if (failures_ != nullptr && failures_->is_crashed(replica)) continue;
    ++visited;
    net::active(ledger_).queries.record(Id::kBytes + record.kind.size() +
                                        record.payload.size() + net::kMessageOverheadBytes);
    bool removed_here = false;
    if (NodeStore* store = find_node_store(replica); store != nullptr) {
      removed_here = store->remove(key, record);
      result.removed = removed_here || result.removed;
    }
    wire_remove(replica, removed_here);
  }
  return result;
}

std::size_t DhtStore::ensure(const Id& key, const Record& record) {
  topology_.assert_exclusive();  // republish may re-create a node's store
  std::size_t created = 0;
  std::size_t placed = 0;
  for (const Id& replica : candidate_replicas(key)) {
    if (placed >= replication_) break;
    if (failures_ != nullptr && failures_->is_crashed(replica)) continue;
    ++placed;
    const std::vector<Record>& existing = records_at(replica, key);
    if (std::find(existing.begin(), existing.end(), record) != existing.end()) continue;
    if (bus_ != nullptr) {
      bus_->post(wire_message(net::Action::kReplicate, replica, key, &record),
                 [](const net::Message&) {});
    }
    stores_[replica].put(key, record);
    ++created;
  }
  return created;
}

bool DhtStore::has_record(const Id& key) {
  std::size_t checked = 0;
  for (const Id& replica : candidate_replicas(key)) {
    if (checked >= replication_) break;
    if (failures_ != nullptr && failures_->is_crashed(replica)) continue;
    ++checked;
    if (!records_at(replica, key).empty()) return true;
  }
  return false;
}

NodeStore* DhtStore::find_node_store(const Id& node) {
  // Read-only on the map structure (shared rights: sharded appliers call
  // this concurrently against a frozen topology); the store value it returns
  // is mutable because value ownership is the caller's contract.
  return const_cast<NodeStore*>(std::as_const(*this).find_node_store(node));
}

const NodeStore* DhtStore::find_node_store(const Id& node) const {
  topology_.assert_shared();
  const auto it = stores_.find(node);
  return it == stores_.end() ? nullptr : &it->second;
}

std::size_t DhtStore::rebalance() {
  topology_.assert_exclusive();  // serial repair: moves records, may create stores
  std::size_t moved = 0;
  const auto is_dead = [&](const Id& node) {
    return failures_ != nullptr && failures_->is_crashed(node);
  };
  // Two passes: compute misplaced records first, then move, so we never
  // invalidate iterators of the map we are walking.
  std::vector<std::pair<Id, Id>> moves;  // (from node, key)
  for (const auto& [node, store] : stores_) {
    for (const Id& key : store.keys()) {
      const std::vector<Id> replicas = dht_.replica_set(key, replication_);
      if (std::find(replicas.begin(), replicas.end(), node) == replicas.end()) {
        moves.emplace_back(node, key);
      }
    }
  }
  for (const auto& [from, key] : moves) {
    // First live replica; with a clean membership this is the primary.
    Id to = dht_.lookup(key).node;
    for (const Id& replica : candidate_replicas(key)) {
      if (!is_dead(replica)) {
        to = replica;
        break;
      }
    }
    // Take the destination reference first: operator[] may insert, and a
    // FlatMap insertion invalidates references into the map. `from` already
    // exists (we just iterated it), so the second access cannot insert.
    // Generation-checked Refs trap the bind-order regression PR 5 hit here:
    // rebinding the accesses would throw instead of reading moved-out memory
    // (tests/test_query_cache.cpp pins the trap).
    stores_[to];  // materialize the destination before binding any reference
    FlatMap<Id, NodeStore>::Ref destination{stores_, to};
    FlatMap<Id, NodeStore>::Ref source{stores_, from};
    std::vector<Record> records = source->get(key);  // copy before erasing
    source->erase(key);
    for (Record& r : records) {
      // The primary may already hold a replica of this record.
      const std::vector<Record>& existing = destination->get(key);
      if (std::find(existing.begin(), existing.end(), r) != existing.end()) continue;
      if (bus_ != nullptr) {
        bus_->post(wire_message(net::Action::kRepair, to, key, &r),
                   [](const net::Message&) {});
      }
      destination->put(key, std::move(r));
      ++moved;
    }
  }
  if (bus_ != nullptr) bus_->sync();

  // Replication repair: membership changes degrade the copy count (a failed
  // replica's records survive elsewhere but with one copy fewer). Re-create
  // missing copies so every record is back at its full replica set.
  if (replication_ > 1) {
    std::vector<std::pair<Id, Record>> copies;  // (destination node, record) per key
    std::vector<Id> copy_keys;
    for (const auto& [node, store] : stores_) {
      for (const Id& key : store.keys()) {
        for (const Id& replica : dht_.replica_set(key, replication_)) {
          if (replica == node || is_dead(replica)) continue;
          const std::vector<Record>& theirs = records_at(replica, key);
          for (const Record& r : store.get(key)) {
            if (std::find(theirs.begin(), theirs.end(), r) == theirs.end()) {
              copies.emplace_back(replica, r);
              copy_keys.push_back(key);
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < copies.size(); ++i) {
      // Re-check: an earlier copy in this batch may have filled the gap.
      const std::vector<Record>& existing = stores_[copies[i].first].get(copy_keys[i]);
      if (std::find(existing.begin(), existing.end(), copies[i].second) != existing.end()) {
        continue;
      }
      if (bus_ != nullptr) {
        bus_->post(wire_message(net::Action::kRepair, copies[i].first, copy_keys[i],
                                &copies[i].second),
                   [](const net::Message&) {});
      }
      stores_[copies[i].first].put(copy_keys[i], copies[i].second);
      ++moved;
    }
    if (bus_ != nullptr) bus_->sync();
  }
  return moved;
}

std::size_t DhtStore::drop_node(const Id& node) {
  topology_.assert_exclusive();  // erases a store: serial crash handling
  const auto it = stores_.find(node);
  if (it == stores_.end()) return 0;
  const std::size_t lost = it->second.record_count();
  stores_.erase(it);
  return lost;
}

std::uint64_t DhtStore::total_bytes() const {
  topology_.assert_shared();  // metrics read over a quiescent map
  std::uint64_t total = 0;
  for (const auto& [node, store] : stores_) total += store.byte_size();
  return total;
}

std::size_t DhtStore::total_records() const {
  topology_.assert_shared();  // metrics read over a quiescent map
  std::size_t total = 0;
  for (const auto& [node, store] : stores_) total += store.record_count();
  return total;
}

}  // namespace dhtidx::storage
