#include "storage/dht_store.hpp"

#include <algorithm>
#include <vector>

namespace dhtidx::storage {

StoreResult DhtStore::put(const Id& key, Record record) {
  const dht::LookupResult where = dht_.lookup(key);
  const std::uint64_t request_bytes =
      Id::kBytes + record.kind.size() + record.payload.size() + net::kMessageOverheadBytes;
  if (replication_ == 1) {
    ledger_.queries.record(request_bytes);
    stores_[where.node].put(key, std::move(record));
    return StoreResult{where.node, where.hops};
  }
  for (const Id& replica : dht_.replica_set(key, replication_)) {
    ledger_.queries.record(request_bytes);
    stores_[replica].put(key, record);
  }
  return StoreResult{where.node, where.hops};
}

DhtStore::GetResult DhtStore::get(const Id& key) {
  GetResult result;
  const std::vector<Id> replicas =
      replication_ == 1 ? std::vector<Id>{dht_.lookup(key).node}
                        : dht_.replica_set(key, replication_);
  result.hops = dht_.lookup(key).hops;
  result.replicas_tried = 0;
  const std::vector<Record>* found = nullptr;
  for (const Id& replica : replicas) {
    ++result.replicas_tried;
    ledger_.queries.record(Id::kBytes + net::kMessageOverheadBytes);
    const std::vector<Record>& records = stores_[replica].get(key);
    result.node = replica;
    if (!records.empty() || result.replicas_tried == static_cast<int>(replicas.size())) {
      found = &records;
      break;
    }
  }
  std::uint64_t response_bytes = net::kMessageOverheadBytes;
  for (const Record& r : *found) {
    // Virtual blob bytes are not charged: the evaluation measures index and
    // metadata traffic, not file downloads (Section V-D).
    response_bytes += r.kind.size() + r.payload.size();
  }
  ledger_.responses.record(response_bytes);
  result.records = found;
  return result;
}

DhtStore::RemoveResult DhtStore::remove(const Id& key, const Record& record) {
  const dht::LookupResult where = dht_.lookup(key);
  RemoveResult result{where.node, false, where.hops};
  const std::vector<Id> replicas =
      replication_ == 1 ? std::vector<Id>{where.node}
                        : dht_.replica_set(key, replication_);
  for (const Id& replica : replicas) {
    ledger_.queries.record(Id::kBytes + record.kind.size() + record.payload.size() +
                           net::kMessageOverheadBytes);
    result.removed = stores_[replica].remove(key, record) || result.removed;
  }
  return result;
}

std::size_t DhtStore::rebalance() {
  std::size_t moved = 0;
  // Two passes: compute misplaced records first, then move, so we never
  // invalidate iterators of the map we are walking.
  std::vector<std::pair<Id, Id>> moves;  // (from node, key)
  for (const auto& [node, store] : stores_) {
    for (const Id& key : store.keys()) {
      const std::vector<Id> replicas = dht_.replica_set(key, replication_);
      if (std::find(replicas.begin(), replicas.end(), node) == replicas.end()) {
        moves.emplace_back(node, key);
      }
    }
  }
  for (const auto& [from, key] : moves) {
    const Id to = dht_.lookup(key).node;
    NodeStore& source = stores_[from];
    NodeStore& destination = stores_[to];
    std::vector<Record> records = source.get(key);  // copy before erasing
    source.erase(key);
    for (Record& r : records) {
      // The primary may already hold a replica of this record.
      const std::vector<Record>& existing = destination.get(key);
      if (std::find(existing.begin(), existing.end(), r) != existing.end()) continue;
      destination.put(key, std::move(r));
      ++moved;
    }
  }

  // Replication repair: membership changes degrade the copy count (a failed
  // replica's records survive elsewhere but with one copy fewer). Re-create
  // missing copies so every record is back at its full replica set.
  if (replication_ > 1) {
    std::vector<std::pair<Id, Record>> copies;  // (destination node, record) per key
    std::vector<Id> copy_keys;
    for (const auto& [node, store] : stores_) {
      for (const Id& key : store.keys()) {
        for (const Id& replica : dht_.replica_set(key, replication_)) {
          if (replica == node) continue;
          const std::vector<Record>& theirs = stores_[replica].get(key);
          for (const Record& r : store.get(key)) {
            if (std::find(theirs.begin(), theirs.end(), r) == theirs.end()) {
              copies.emplace_back(replica, r);
              copy_keys.push_back(key);
            }
          }
        }
      }
    }
    for (std::size_t i = 0; i < copies.size(); ++i) {
      // Re-check: an earlier copy in this batch may have filled the gap.
      const std::vector<Record>& existing = stores_[copies[i].first].get(copy_keys[i]);
      if (std::find(existing.begin(), existing.end(), copies[i].second) != existing.end()) {
        continue;
      }
      stores_[copies[i].first].put(copy_keys[i], copies[i].second);
      ++moved;
    }
  }
  return moved;
}

std::size_t DhtStore::drop_node(const Id& node) {
  const auto it = stores_.find(node);
  if (it == stores_.end()) return 0;
  const std::size_t lost = it->second.record_count();
  stores_.erase(it);
  return lost;
}

std::uint64_t DhtStore::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& [node, store] : stores_) total += store.byte_size();
  return total;
}

std::size_t DhtStore::total_records() const {
  std::size_t total = 0;
  for (const auto& [node, store] : stores_) total += store.record_count();
  return total;
}

}  // namespace dhtidx::storage
