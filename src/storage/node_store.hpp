// Per-node key/value storage.
//
// Section IV requires the underlying storage system "to allow for the
// registration of multiple entries using the same key", so a NodeStore is a
// multimap from keys to records. Records carry a kind tag, an inline payload
// (descriptor XML, serialized queries, ...) and an optional virtual payload
// size for blobs the simulation does not materialize (the ~250 KB article
// files of Section V-B).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.hpp"
#include "common/id.hpp"

namespace dhtidx::storage {

/// One stored item.
struct Record {
  std::string kind;     ///< application tag, e.g. "file"
  std::string payload;  ///< inline content
  std::uint64_t virtual_payload_bytes = 0;  ///< simulated blob size

  /// Total bytes this record accounts for.
  std::uint64_t byte_size() const {
    return kind.size() + payload.size() + virtual_payload_bytes;
  }

  bool operator==(const Record&) const = default;
};

/// The storage of a single peer: an Id-keyed multimap with byte accounting.
class NodeStore {
 public:
  /// Appends a record under `key` (duplicates allowed).
  void put(const Id& key, Record record);

  /// All records under `key` (empty when none).
  const std::vector<Record>& get(const Id& key) const;

  /// Removes the first record equal to `record` under `key`.
  /// Returns true when something was removed.
  bool remove(const Id& key, const Record& record);

  /// Removes every record under `key`; returns how many were removed.
  std::size_t erase(const Id& key);

  bool contains(const Id& key) const { return items_.contains(key); }

  std::size_t key_count() const { return items_.size(); }
  std::size_t record_count() const { return record_count_; }
  std::uint64_t byte_size() const { return bytes_; }

  std::vector<Id> keys() const;

  /// Moves every (key, record) pair for which `predicate(key)` holds into
  /// `destination`. Used for key handoff when responsibility changes.
  template <typename Predicate>
  std::size_t transfer_if(NodeStore& destination, Predicate predicate) {
    std::size_t moved = 0;
    for (auto it = items_.begin(); it != items_.end();) {
      if (predicate(it->first)) {
        for (Record& r : it->second) {
          ++moved;
          bytes_ -= r.byte_size();
          --record_count_;
          destination.put(it->first, std::move(r));
        }
        it = items_.erase(it);
      } else {
        ++it;
      }
    }
    return moved;
  }

 private:
  // Sorted flat storage: probed on every put/get of the simulation's hot
  // path, iterated in ascending key order (transfer_if, keys()) just like
  // the std::map it replaced.
  FlatMap<Id, std::vector<Record>> items_;
  std::size_t record_count_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace dhtidx::storage
