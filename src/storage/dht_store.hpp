// DHT-backed storage facade.
//
// Routes put/get/remove operations to the node responsible for each key
// (resolved through any Dht implementation) and keeps one NodeStore per peer.
// This is the "Publication index" of Figure 5: the raw key-to-data layer on
// which the query indexes sit. With a FailureInjector wired in, operations
// discover dead replicas by timeout (under a RetryPolicy) and fail over to
// the surviving copies instead of throwing.
#pragma once

#include "common/flat_map.hpp"
#include "common/thread_annotations.hpp"
#include "dht/dht.hpp"
#include "net/bus.hpp"
#include "net/failure.hpp"
#include "net/latency.hpp"
#include "net/retry.hpp"
#include "net/stats.hpp"
#include "storage/node_store.hpp"

namespace dhtidx::storage {

/// Outcome of a storage operation, for hop/traffic-aware callers.
struct StoreResult {
  Id node;       ///< peer that served the operation
  int hops = 0;  ///< substrate routing hops
};

/// Key/value storage distributed over a Dht.
class DhtStore {
 public:
  /// `dht` and `ledger` must outlive the store. Traffic for storage
  /// operations is recorded into the ledger's query/response categories.
  /// `replication` copies of each record are kept on the key's replica set
  /// (Section IV-D: the index "can benefit from the mechanisms implemented
  /// by the DHT substrate ... such as data replication").
  DhtStore(dht::Dht& dht, net::TrafficLedger& ledger, std::size_t replication = 1)
      : dht_(dht), ledger_(ledger), replication_(replication < 1 ? 1 : replication) {}

  std::size_t replication() const { return replication_; }

  /// Stores `record` at the responsible node (and its replicas). Under a
  /// failure injector the copies land on the first `replication` live
  /// candidates (PAST-style placement).
  StoreResult put(const Id& key, Record record);

  /// Fetches all records under `key`. The responsible node is asked first;
  /// when it has nothing (e.g. it lost its store in a crash), the remaining
  /// replicas are tried in order, one extra request each. Failed deliveries
  /// are retried per the retry policy and counted in `rpc_failures`;
  /// `unreachable` is set when no replica answered at all.
  struct GetResult {
    const std::vector<Record>* records;  ///< never null; may be empty
    Id node;
    int hops = 0;
    int replicas_tried = 1;
    int rpc_failures = 0;
    bool unreachable = false;
  };
  GetResult get(const Id& key);

  /// Removes one matching record from every live replica. Returns the
  /// serving node and whether a record was removed.
  struct RemoveResult {
    Id node;
    bool removed = false;
    int hops = 0;
  };
  RemoveResult remove(const Id& key, const Record& record);

  /// Publisher re-announce (soft-state maintenance): re-creates the record
  /// on every live replica that lacks it. Returns the number of copies
  /// created. Maintenance operation: no ledger traffic, like rebalance().
  std::size_t ensure(const Id& key, const Record& record);

  /// True when any live replica of `key` holds at least one record.
  /// Traffic-free maintenance read.
  bool has_record(const Id& key);

  /// Direct access to a node's local store (metrics, tests, migration).
  /// Creates an empty store when the node has none -- structure-mutating, so
  /// it must never run concurrently with anything (the sharded build
  /// pre-creates every store before its parallel phases).
  NodeStore& node_store(const Id& node) {
    topology_.assert_exclusive();  // operator[] may insert
    return stores_[node];
  }

  /// Checked accessors: the node's store, or nullptr when it has none.
  /// Unlike node_store these never fabricate an empty node as a side effect
  /// of reading (auditor/metrics paths must not grow the map they inspect),
  /// which also makes them the safe surface for concurrent sharded appliers
  /// while the map structure is frozen.
  NodeStore* find_node_store(const Id& node);
  const NodeStore* find_node_store(const Id& node) const;

  const FlatMap<Id, NodeStore>& node_stores() const {
    topology_.assert_shared();  // read surface (metrics, auditor)
    return stores_;
  }

  /// Re-homes every record according to the current Dht membership: records
  /// on nodes outside their key's replica set move to the primary. Returns
  /// the number of records moved. Call after membership changes.
  std::size_t rebalance();

  /// Simulates losing a node's disk (crash without recovery). Returns the
  /// number of records destroyed. With replication > 1 the data remains
  /// readable from the other replicas.
  std::size_t drop_node(const Id& node);

  /// Wires the failure injector consulted on every delivery (nullptr = the
  /// network never fails, the seed behaviour).
  void set_failures(net::FailureInjector* failures) { failures_ = failures; }
  net::FailureInjector* failures() const { return failures_; }

  void set_retry_policy(const net::RetryPolicy& policy) { retry_ = policy; }

  /// Latency model charged with retry backoff (nullptr = none).
  void set_latency(net::LatencyModel* latency) { latency_ = latency; }

  /// Routes store/fetch/remove/replicate/repair RPCs through a message bus
  /// (see IndexService::set_bus): each operation additionally travels as a
  /// typed net::Message whose serialized size lands in the bus's measured
  /// ledger. nullptr (the default) keeps pure in-process behaviour.
  void set_bus(net::MessageBus* bus) { bus_ = bus; }
  net::MessageBus* bus() const { return bus_; }

  /// Total stored bytes across all nodes.
  std::uint64_t total_bytes() const;

  /// Total records across all nodes.
  std::size_t total_records() const;

 private:
  /// Replica candidates for `key`: the replica set widened by the number of
  /// crashed nodes, so `replication_` live placements remain reachable while
  /// crashes go undetected by the substrate.
  std::vector<Id> candidate_replicas(const Id& key);

  /// Attempts delivery to `target` under the retry policy (see
  /// IndexService::try_deliver for the accounting contract). A wire message,
  /// when given, has each failed attempt recorded as a lost frame.
  bool try_deliver(const Id& target, std::uint64_t request_bytes, int& rpc_failures,
                   const net::Message* wire = nullptr);

  /// Builds a storage-layer wire message carrying `key` (and optionally one
  /// record's kind and payload) from the client to `node`.
  net::Message wire_message(net::Action action, const Id& node, const Id& key,
                            const Record* record) const;

  /// Records under `key` on `node` without creating the node's store.
  const std::vector<Record>& records_at(const Id& node, const Id& key) const;

  dht::Dht& dht_;
  net::TrafficLedger& ledger_;
  std::size_t replication_;
  net::FailureInjector* failures_ = nullptr;
  net::LatencyModel* latency_ = nullptr;
  net::MessageBus* bus_ = nullptr;
  net::RetryPolicy retry_;

  /// Capability over the *structure* of stores_ (which nodes have a store).
  /// Exclusive = may insert/erase stores (serial phases: placement, repair,
  /// drop_node); shared = structure frozen, concurrent readers may mutate
  /// only store values they own (the sharded appliers' contract).
  PhaseCapability topology_;
  // Sorted flat storage; iterated by rebalance/metrics in ascending node-id
  // order exactly like the std::map it replaced (determinism requirement).
  FlatMap<Id, NodeStore> stores_ DHTIDX_GUARDED_BY(topology_);
};

}  // namespace dhtidx::storage
