// DHT-backed storage facade.
//
// Routes put/get/remove operations to the node responsible for each key
// (resolved through any Dht implementation) and keeps one NodeStore per peer.
// This is the "Publication index" of Figure 5: the raw key-to-data layer on
// which the query indexes sit.
#pragma once

#include <map>

#include "dht/dht.hpp"
#include "net/stats.hpp"
#include "storage/node_store.hpp"

namespace dhtidx::storage {

/// Outcome of a storage operation, for hop/traffic-aware callers.
struct StoreResult {
  Id node;       ///< peer that served the operation
  int hops = 0;  ///< substrate routing hops
};

/// Key/value storage distributed over a Dht.
class DhtStore {
 public:
  /// `dht` and `ledger` must outlive the store. Traffic for storage
  /// operations is recorded into the ledger's query/response categories.
  /// `replication` copies of each record are kept on the key's replica set
  /// (Section IV-D: the index "can benefit from the mechanisms implemented
  /// by the DHT substrate ... such as data replication").
  DhtStore(dht::Dht& dht, net::TrafficLedger& ledger, std::size_t replication = 1)
      : dht_(dht), ledger_(ledger), replication_(replication < 1 ? 1 : replication) {}

  std::size_t replication() const { return replication_; }

  /// Stores `record` at the responsible node (and its replicas).
  StoreResult put(const Id& key, Record record);

  /// Fetches all records under `key`. The responsible node is asked first;
  /// when it has nothing (e.g. it lost its store in a crash), the remaining
  /// replicas are tried in order, one extra request each.
  struct GetResult {
    const std::vector<Record>* records;  ///< never null; may be empty
    Id node;
    int hops = 0;
    int replicas_tried = 1;
  };
  GetResult get(const Id& key);

  /// Removes one matching record. Returns the serving node and whether a
  /// record was removed.
  struct RemoveResult {
    Id node;
    bool removed = false;
    int hops = 0;
  };
  RemoveResult remove(const Id& key, const Record& record);

  /// Direct access to a node's local store (metrics, tests, migration).
  NodeStore& node_store(const Id& node) { return stores_[node]; }
  const std::map<Id, NodeStore>& node_stores() const { return stores_; }

  /// Re-homes every record according to the current Dht membership: records
  /// on nodes outside their key's replica set move to the primary. Returns
  /// the number of records moved. Call after membership changes.
  std::size_t rebalance();

  /// Simulates losing a node's disk (crash without recovery). Returns the
  /// number of records destroyed. With replication > 1 the data remains
  /// readable from the other replicas.
  std::size_t drop_node(const Id& node);

  /// Total stored bytes across all nodes.
  std::uint64_t total_bytes() const;

  /// Total records across all nodes.
  std::size_t total_records() const;

 private:
  dht::Dht& dht_;
  net::TrafficLedger& ledger_;
  std::size_t replication_;
  std::map<Id, NodeStore> stores_;
};

}  // namespace dhtidx::storage
