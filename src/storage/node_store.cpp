#include "storage/node_store.hpp"

#include <algorithm>

namespace dhtidx::storage {

namespace {
const std::vector<Record> kEmpty;
}

void NodeStore::put(const Id& key, Record record) {
  bytes_ += record.byte_size();
  ++record_count_;
  items_[key].push_back(std::move(record));
}

const std::vector<Record>& NodeStore::get(const Id& key) const {
  const auto it = items_.find(key);
  return it == items_.end() ? kEmpty : it->second;
}

bool NodeStore::remove(const Id& key, const Record& record) {
  const auto it = items_.find(key);
  if (it == items_.end()) return false;
  const auto pos = std::find(it->second.begin(), it->second.end(), record);
  if (pos == it->second.end()) return false;
  bytes_ -= pos->byte_size();
  --record_count_;
  it->second.erase(pos);
  if (it->second.empty()) items_.erase(it);
  return true;
}

std::size_t NodeStore::erase(const Id& key) {
  const auto it = items_.find(key);
  if (it == items_.end()) return 0;
  const std::size_t count = it->second.size();
  for (const Record& r : it->second) bytes_ -= r.byte_size();
  record_count_ -= count;
  items_.erase(it);
  return count;
}

std::vector<Id> NodeStore::keys() const {
  std::vector<Id> out;
  out.reserve(items_.size());
  for (const auto& [key, records] : items_) out.push_back(key);
  return out;
}

}  // namespace dhtidx::storage
